"""Staged training engine: DataPipeline → PlanSchedule → StepExecutor.

The engine decomposes the historical monolithic trainer loop into three
independently testable stages wired by callbacks:

* a :class:`~repro.data.pipeline.DataPipeline` supplies joint per-step batch
  dicts (serial, or prefetched on a background worker);
* the model's plan provider (per-step builder or the incremental
  :class:`~repro.core.plan_schedule.PlanSchedule`) turns a step's batches
  into a subgraph plan — the engine only signals epoch boundaries through
  the model's optional ``on_epoch_start`` hook;
* a :class:`StepExecutor` runs the optimisation step (forward, backward,
  clip, update, cache invalidation).  A future sharded/data-parallel
  executor replaces this object without touching the loop.

Cross-cutting concerns — early stopping, learning-rate scheduling, custom
monitoring — plug in as :class:`Callback` objects instead of branches inside
the loop.  With the default configuration (serial pipeline, per-step plans,
no scheduler) the engine replays the historical loop exactly: same rng
consumption, same step order, same histories under a fixed seed.

Timing is recorded per stage so benchmarks stop under-reporting wall cost:
``step_seconds_total`` is the pure optimisation time (the historical
``train_seconds_per_batch`` numerator), ``data_prep_seconds_total`` is the
producer-side batch materialisation cost and ``data_wait_seconds_total`` is
how long the loop actually stood still waiting for data — the gap between
the last two is the wall time a prefetching pipeline hid behind training.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..data.pipeline import DataPipeline, build_pipeline
from ..optim import Optimizer, build_scheduler, clip_grad_norm
from ..profiling import profiler
from .config import TrainerConfig
from .task import DOMAIN_KEYS

__all__ = [
    "TrainingHistory",
    "EngineContext",
    "Callback",
    "EarlyStoppingCallback",
    "LRSchedulerCallback",
    "StepExecutor",
    "TrainingEngine",
]


@dataclass
class TrainingHistory:
    """Per-epoch records collected during a :meth:`TrainingEngine.fit` run."""

    epoch_losses: List[float] = field(default_factory=list)
    validation_metrics: List[Dict[str, Dict[str, float]]] = field(default_factory=list)
    best_epoch: int = -1
    best_validation_score: float = -np.inf
    train_seconds_per_batch: float = 0.0
    num_batches: int = 0
    best_state: Optional[Dict[str, np.ndarray]] = None
    #: Phase/op report collected when ``TrainerConfig.profile`` is set.
    profile_report: Optional[str] = None
    #: Pure optimisation time summed over steps (forward/backward/update).
    step_seconds_total: float = 0.0
    #: Producer-side batch preparation time (materialisation, negatives,
    #: slicing) — runs on the worker thread when prefetching.
    data_prep_seconds_total: float = 0.0
    #: Time the training loop actually blocked waiting for batches; equals
    #: ``data_prep_seconds_total`` for the serial pipeline, approaches zero
    #: when prefetching fully overlaps preparation with training.
    data_wait_seconds_total: float = 0.0
    #: Wall-clock duration of the whole fit loop.
    fit_wall_seconds: float = 0.0
    #: Per-epoch wall-clock durations (data + step + bookkeeping).
    epoch_wall_seconds: List[float] = field(default_factory=list)
    #: Learning rate in effect at the start of each epoch.
    learning_rates: List[float] = field(default_factory=list)
    #: Fault-tolerance counters, filled by the supervised sharded executors:
    #: how many shard workers died / hit their step deadline, how many were
    #: respawned, and how many times the executor degraded to fewer shards.
    worker_deaths: int = 0
    worker_timeouts: int = 0
    worker_respawns: int = 0
    executor_degradations: int = 0
    #: Checkpoints written during this run, and the newest file's path.
    checkpoints_written: int = 0
    last_checkpoint: Optional[str] = None
    #: Path of the checkpoint this history was restored from (resume runs).
    resumed_from: Optional[str] = None

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")

    @property
    def data_seconds_per_batch(self) -> float:
        """Producer-side data cost per executed step (0 when nothing ran)."""
        return self.data_prep_seconds_total / self.num_batches if self.num_batches else 0.0


@dataclass
class EngineContext:
    """Mutable state shared between the engine loop and its callbacks."""

    model: object
    optimizer: Optimizer
    config: TrainerConfig
    history: TrainingHistory
    epoch: int = 0
    stop_requested: bool = False
    #: The data pipeline driving the current fit (checkpoint callbacks read
    #: its per-epoch loader-rng snapshots).
    pipeline: Optional[DataPipeline] = None
    #: The :class:`~repro.core.checkpoint.ResumeState` this fit restarted
    #: from (``None`` for a fresh run).
    resume: Optional[object] = None

    def request_stop(self) -> None:
        """Ask the engine to stop after the current epoch's bookkeeping."""
        self.stop_requested = True


class Callback:
    """Hook points around the engine loop; subclass and override what you need.

    All methods are no-ops by default.  Callbacks must not mutate the batch
    stream; they may read/write the history and call
    :meth:`EngineContext.request_stop`.
    """

    def on_fit_start(self, context: EngineContext) -> None: ...

    def on_epoch_start(self, context: EngineContext, epoch: int) -> None: ...

    def on_step_end(self, context: EngineContext, step: int, loss: float) -> None: ...

    def on_epoch_end(
        self,
        context: EngineContext,
        epoch: int,
        epoch_loss: float,
    ) -> None: ...

    def on_evaluation(
        self, context: EngineContext, epoch: int, metrics: Dict[str, Dict[str, float]]
    ) -> None: ...

    def on_epoch_complete(self, context: EngineContext, epoch: int) -> None:
        """After *all* of an epoch's bookkeeping — loss recording, epoch-end
        callbacks and evaluation — so state snapshotted here (checkpoints)
        matches a consistent epoch boundary."""

    def on_fit_end(self, context: EngineContext) -> None: ...


class EarlyStoppingCallback(Callback):
    """Track the best validation score and stop after ``patience`` flat evals.

    Replicates the historical trainer semantics: the best state is snapshotted
    whenever the mean ``ndcg@10`` over the evaluated domains improves
    (regardless of patience), and training stops once ``patience`` consecutive
    evaluations fail to improve (``patience=None`` never stops).
    """

    def __init__(self, patience: Optional[int] = None) -> None:
        self.patience = patience
        self.evals_without_improvement = 0

    def on_evaluation(self, context, epoch, metrics) -> None:
        history = context.history
        score = float(
            np.mean([metrics[key]["ndcg@10"] for key in DOMAIN_KEYS if key in metrics])
        )
        if score > history.best_validation_score:
            history.best_validation_score = score
            history.best_epoch = epoch
            history.best_state = context.model.state_dict()
            self.evals_without_improvement = 0
        else:
            self.evals_without_improvement += 1
            if self.patience is not None and self.evals_without_improvement >= self.patience:
                context.request_stop()


class LRSchedulerCallback(Callback):
    """Advance a learning-rate scheduler once per epoch."""

    def __init__(self, scheduler) -> None:
        self.scheduler = scheduler

    def on_epoch_end(self, context, epoch, epoch_loss) -> None:
        self.scheduler.step()


class StepExecutor:
    """Run one optimisation step; swap this out for sharded execution.

    The executor owns everything between receiving a step's batches and the
    updated parameters: zero-grad, forward, backward, clipping, the optimiser
    update and the model's cache invalidation.

    With ``traced=True`` the forward+backward of each step is recorded once
    per section key (model structure × present domains × engine dtype) into
    a flat replay program and replayed on subsequent steps — see
    :mod:`repro.tensor.trace`.  Guarded replay is bit-identical to eager
    execution; the optimiser update always runs eagerly.
    """

    def __init__(
        self,
        model,
        optimizer: Optimizer,
        grad_clip_norm: Optional[float] = None,
        traced: bool = False,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.grad_clip_norm = grad_clip_norm
        self.traced = bool(traced)
        self.trace_stats: Optional[Dict] = None
        self._trace_runtime = None

    def open(self) -> None:
        if not self.traced or self._trace_runtime is not None:
            return
        from ..tensor import trace

        trace.check_traceable(self.model)
        self._trace_runtime = trace.TraceRuntime()
        self._trace_runtime.install()

    def close(self) -> None:
        runtime = self._trace_runtime
        if runtime is None:
            return
        self.trace_stats = dict(runtime.stats.as_dict(), arena=runtime.arena.as_dict())
        profiler.record_section("trace", self.trace_stats)
        runtime.uninstall()
        self._trace_runtime = None

    def _forward_backward(self, batches) -> float:
        with profiler.scope("train/forward"):
            loss = self.model.compute_batch_loss(batches)
        with profiler.scope("train/backward"):
            loss.backward()
        return float(loss.item())

    def run_step(self, batches) -> float:
        """Execute one training step and return the scalar loss."""
        self.optimizer.zero_grad()
        runtime = self._trace_runtime
        if runtime is None:
            loss_value = self._forward_backward(batches)
        else:
            from ..tensor import engine as tensor_engine
            from ..tensor.trace import model_rng_sources, model_trace_signature

            key = (
                "step",
                model_trace_signature(self.model),
                tuple(
                    sorted(
                        key
                        for key, batch in batches.items()
                        if batch is not None and len(batch) > 0
                    )
                ),
                tensor_engine.get_dtype().str,
            )
            loss_value = runtime.run_section(
                key,
                lambda: self._forward_backward(batches),
                rng_sources=model_rng_sources(self.model),
            )
        with profiler.scope("train/optimizer"):
            if self.grad_clip_norm is not None:
                clip_grad_norm(self.model.parameters(), self.grad_clip_norm)
            self.optimizer.step()
        self.model.invalidate_cache()
        return loss_value


class TrainingEngine:
    """Drive pipeline → plans → executor for ``config.num_epochs`` epochs."""

    def __init__(
        self,
        model,
        optimizer: Optimizer,
        config: TrainerConfig,
        evaluate_fn: Optional[Callable[[], Dict[str, Dict[str, float]]]] = None,
        executor: Optional[StepExecutor] = None,
        callbacks: Sequence[Callback] = (),
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.config = config
        self.evaluate_fn = evaluate_fn
        self.executor = executor or StepExecutor(
            model,
            optimizer,
            grad_clip_norm=config.grad_clip_norm,
            traced=config.traced_steps,
        )
        self.callbacks: List[Callback] = []
        if config.eval_every and evaluate_fn is not None:
            self.callbacks.append(EarlyStoppingCallback(config.early_stopping_patience))
        scheduler = build_scheduler(
            config.lr_scheduler,
            optimizer,
            step_size=config.lr_step_size,
            gamma=config.lr_gamma,
        )
        if scheduler is not None:
            self.callbacks.append(LRSchedulerCallback(scheduler))
        self.callbacks.extend(callbacks)
        if config.checkpoint_dir:
            from .checkpoint import CheckpointCallback

            self.callbacks.append(CheckpointCallback(self))

    @property
    def scheduler(self):
        """The LR scheduler driven by this engine's callbacks (or ``None``)."""
        for callback in self.callbacks:
            if isinstance(callback, LRSchedulerCallback):
                return callback.scheduler
        return None

    @property
    def early_stopper(self) -> Optional[EarlyStoppingCallback]:
        """The early-stopping callback, when evaluation is configured."""
        for callback in self.callbacks:
            if isinstance(callback, EarlyStoppingCallback):
                return callback
        return None

    def build_pipeline(self, loaders, start_epoch: int = 0) -> DataPipeline:
        """Default pipeline for the configured prefetch depth."""
        return build_pipeline(
            loaders,
            num_epochs=self.config.num_epochs,
            prefetch_epochs=self.config.prefetch_epochs,
            start_epoch=start_epoch,
        )

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def fit(
        self,
        pipeline: DataPipeline,
        history: Optional[TrainingHistory] = None,
        max_steps: Optional[int] = None,
        resume=None,
    ) -> TrainingHistory:
        """Run the training loop over the pipeline's epochs.

        ``max_steps`` caps the total number of executed steps (profiling and
        smoke runs); the loop stops cleanly once it is reached.  The pipeline
        is always closed on exit — normal return, early stop or exception —
        so no worker thread outlives this call.

        ``resume`` (a :class:`~repro.core.checkpoint.ResumeState`, paired
        with a ``history`` restored by the checkpoint module and a pipeline
        built with the matching ``start_epoch``) continues a checkpointed
        run: the loop enters at ``resume.next_epoch``, replays the epoch's
        already-trained step prefix without executing it (the restored
        loader rng regenerates the identical batch stream), and carries the
        checkpointed partial epoch-loss sum — the completed run is
        bit-identical to one that was never interrupted.
        """
        history = history if history is not None else TrainingHistory()
        context = EngineContext(
            model=self.model,
            optimizer=self.optimizer,
            config=self.config,
            history=history,
            pipeline=pipeline,
            resume=resume,
        )
        config = self.config
        fit_started = time.perf_counter()
        total_steps = resume.total_steps if resume is not None else 0
        start_epoch = resume.next_epoch if resume is not None else 0
        try:
            # Executors with external resources (the sharded executor's
            # worker processes) open *before* the pipeline starts any worker
            # thread — forking a multi-threaded process risks inheriting
            # held locks — but inside this try, so a failing open or
            # on_fit_start callback still reaches the executor close below.
            executor_open = getattr(self.executor, "open", None)
            if callable(executor_open):
                executor_open()
            for callback in self.callbacks:
                callback.on_fit_start(context)
            with pipeline:
                for epoch in range(start_epoch, config.num_epochs):
                    context.epoch = epoch
                    # A mid-epoch resume re-enters the epoch the killed run
                    # was in: its learning-rate entry is already in the
                    # restored history, and the already-trained step prefix
                    # is replayed (batches discarded) instead of re-run.
                    resuming_mid_epoch = (
                        resume is not None
                        and epoch == resume.next_epoch
                        and resume.steps_into_epoch > 0
                    )
                    if not resuming_mid_epoch:
                        history.learning_rates.append(self.optimizer.lr)
                    epoch_started = time.perf_counter()
                    self.model.on_epoch_start(epoch)
                    for callback in self.callbacks:
                        callback.on_epoch_start(context, epoch)

                    epoch_loss = resume.epoch_loss if resuming_mid_epoch else 0.0
                    epoch_steps = resume.steps_into_epoch if resuming_mid_epoch else 0
                    epoch_truncated = False
                    steps = pipeline.epoch(epoch)
                    for _ in range(resume.steps_into_epoch if resuming_mid_epoch else 0):
                        if next(steps, None) is None:
                            raise RuntimeError(
                                "resume position beyond the epoch's step count; "
                                "the checkpoint does not match this data pipeline"
                            )
                    while True:
                        with profiler.scope("data/wait"):
                            batches = next(steps, None)
                        if batches is None:
                            break
                        step_started = time.perf_counter()
                        loss = self.executor.run_step(batches)
                        history.step_seconds_total += time.perf_counter() - step_started
                        epoch_loss += loss
                        epoch_steps += 1
                        total_steps += 1
                        history.num_batches = total_steps
                        for callback in self.callbacks:
                            callback.on_step_end(context, total_steps, loss)
                        if max_steps is not None and total_steps >= max_steps:
                            context.request_stop()
                            epoch_truncated = True
                            break

                    history.epoch_wall_seconds.append(
                        time.perf_counter() - epoch_started,
                    )
                    if epoch_truncated:
                        # A max_steps cap cut the epoch short: recording a
                        # partial mean as an epoch loss (or advancing the LR
                        # scheduler / evaluating) would misrepresent a
                        # fraction of an epoch as a completed one.
                        break
                    mean_loss = epoch_loss / max(epoch_steps, 1)
                    history.epoch_losses.append(mean_loss)
                    if config.verbose:
                        print(
                            f"[{type(self.model).__name__}] epoch {epoch + 1}/"
                            f"{config.num_epochs} loss={mean_loss:.4f}"
                        )
                    for callback in self.callbacks:
                        callback.on_epoch_end(context, epoch, mean_loss)

                    if (
                        config.eval_every
                        and self.evaluate_fn is not None
                        and (epoch + 1) % config.eval_every == 0
                    ):
                        metrics = self.evaluate_fn()
                        history.validation_metrics.append(metrics)
                        for callback in self.callbacks:
                            callback.on_evaluation(context, epoch, metrics)

                    for callback in self.callbacks:
                        callback.on_epoch_complete(context, epoch)

                    if context.stop_requested:
                        break
        finally:
            # Symmetric to the eager open above: whatever path exits the
            # loop — normal return, early stop, executor crash — no worker
            # process may outlive fit() (close() is idempotent, so an
            # executor that already tore itself down is fine).
            executor_close = getattr(self.executor, "close", None)
            if callable(executor_close):
                executor_close()
            fault_events = getattr(self.executor, "fault_events", None)
            if fault_events:
                history.worker_deaths += fault_events.get("deaths", 0)
                history.worker_timeouts += fault_events.get("timeouts", 0)
                history.worker_respawns += fault_events.get("respawns", 0)
                history.executor_degradations += fault_events.get("degradations", 0)
            history.data_prep_seconds_total = pipeline.stats.prep_seconds
            history.data_wait_seconds_total = pipeline.stats.wait_seconds
            history.fit_wall_seconds = time.perf_counter() - fit_started
            history.train_seconds_per_batch = history.step_seconds_total / max(
                history.num_batches, 1
            )
            for callback in self.callbacks:
                callback.on_fit_end(context)
        return history
