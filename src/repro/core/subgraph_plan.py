"""Per-step subgraph plans for sampled NMCDR training.

A :class:`SubgraphPlan` captures everything one sampled training step needs:
the per-domain induced k-hop subgraphs around the mini-batches and the
*local* index arrays for every stage of the NMCDR pipeline — batch rows,
per-layer intra-matching head/tail pools, the cross-domain overlap alignment
and the per-layer inter-matching pools.

The plan builder must include every node whose representation the restricted
forward pass reads, otherwise the computation silently diverges from the
full-graph one.  The required closure is:

* **batch users/items** of each domain (the loss rows);
* **intra-matching pools** — the head/tail group messages are means over the
  pooled users' encoder outputs, so pool users need their own k-hop
  neighbourhoods (Eq. 8–9);
* **inter-matching pools** — each domain's update aggregates sampled
  non-overlapped users *of the other domain* (Eq. 12–13);
* **overlap partners** of every seed user: the self message of Eq. 12/13 is
  the same person's representation in the other domain, and with stacked
  matching layers the partner's own earlier-layer state must also be exact,
  which one partner-closure round guarantees (partner-of-partner is the user
  itself).

Pools are sampled *before* the subgraph is extracted, in exactly the order
the full-graph forward would consume the matching sampler's rng stream (intra
pools for both domains, then inter pools, layer by layer) — so a sampled step
and a full-graph step starting from the same sampler state use identical
pools, which is what makes the float64 equivalence test meaningful even with
a finite ``max_matching_neighbors``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.dataloader import Batch
from ..graph import MatchingNeighborSampler, SubgraphCache
from ..graph.sampling import DomainSubgraph
from .config import NMCDRConfig
from .task import CDRTask, DOMAIN_KEYS

__all__ = [
    "SubgraphSettings",
    "DomainSubgraphPlan",
    "SubgraphPlan",
    "build_subgraph_plan",
    "build_subgraph_plan_from_pools",
    "sample_matching_pools",
    "batch_index_arrays",
    "close_seed_users",
    "finalize_subgraph_plan",
]

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass
class SubgraphSettings:
    """Resolved knobs of the sampled-subgraph training mode."""

    num_hops: int
    fanout: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_hops < 1:
            raise ValueError("num_hops must be >= 1")
        if self.fanout is not None and self.fanout < 1:
            raise ValueError("fanout must be positive or None")


@dataclass
class DomainSubgraphPlan:
    """Local-id view of one domain for one sampled training step."""

    subgraph: Optional[DomainSubgraph]
    #: Local rows of the mini-batch examples (aligned with the batch labels).
    batch_users: np.ndarray = field(default_factory=lambda: _EMPTY)
    batch_items: np.ndarray = field(default_factory=lambda: _EMPTY)
    #: Per matching layer: local (head_pool, tail_pool) of the intra step.
    intra_pools: List[Tuple[np.ndarray, np.ndarray]] = field(default_factory=list)
    #: Per matching layer: local ids *in the other domain's subgraph* of the
    #: sampled non-overlapped pool aggregated by this domain's inter step.
    inter_pools: List[np.ndarray] = field(default_factory=list)
    #: Aligned local overlap alignment: row k of ``overlap_own`` (this domain)
    #: and ``overlap_other`` (other domain) refer to the same person.
    overlap_own: np.ndarray = field(default_factory=lambda: _EMPTY)
    overlap_other: np.ndarray = field(default_factory=lambda: _EMPTY)

    @property
    def active(self) -> bool:
        return self.subgraph is not None and self.subgraph.num_users > 0


@dataclass
class SubgraphPlan:
    """Both domains' :class:`DomainSubgraphPlan` for one training step."""

    domains: Dict[str, DomainSubgraphPlan]
    settings: SubgraphSettings

    def domain(self, key: str) -> DomainSubgraphPlan:
        return self.domains[key]


def sample_matching_pools(
    task: CDRTask, config: NMCDRConfig, sampler: MatchingNeighborSampler
) -> Tuple[Dict[str, list], Dict[str, list]]:
    """Draw every matching pool for one step, mirroring the full-forward order.

    One call consumes exactly the sampler rng a full-graph forward pass
    would, which is what lets the sharded executor draw pools once in the
    parent process (keeping its rng stream — and therefore mid-training
    evaluation — identical to the serial executor's) and ship the drawn
    pools to every shard worker.
    """
    intra: Dict[str, list] = {key: [] for key in DOMAIN_KEYS}
    inter: Dict[str, list] = {key: [] for key in DOMAIN_KEYS}
    for _ in range(config.num_matching_layers):
        if config.use_intra_matching:
            for key in DOMAIN_KEYS:
                intra[key].append(sampler.sample_partition(task.domain(key).partition))
        if config.use_inter_matching:
            for key in DOMAIN_KEYS:
                other = task.other_key(key)
                inter[key].append(sampler.sample(task.non_overlap_indices(other)))
    return intra, inter


# Backwards-compatible private alias (pre-sharding name).
_sample_pools = sample_matching_pools


def batch_index_arrays(
    batches: Dict[str, Optional[Batch]],
) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]:
    """Per-domain (users, items) int64 arrays of the step's mini-batches."""
    batch_users: Dict[str, np.ndarray] = {}
    batch_items: Dict[str, np.ndarray] = {}
    for key in DOMAIN_KEYS:
        batch = batches.get(key)
        if batch is None or len(batch) == 0:
            batch_users[key] = _EMPTY
            batch_items[key] = _EMPTY
        else:
            batch_users[key] = np.asarray(batch.users, dtype=np.int64)
            batch_items[key] = np.asarray(batch.items, dtype=np.int64)
    return batch_users, batch_items


def close_seed_users(
    task: CDRTask, seed_parts: Dict[str, list]
) -> Dict[str, np.ndarray]:
    """Union the per-domain seed parts and apply one partner-closure round.

    One round suffices — partner of partner is the user itself — and union
    with :func:`np.unique` makes the result independent of how the caller
    grouped the parts, which is what lets the incremental schedule assemble
    seeds as (cached static closure) ∪ (per-step batch closure) and land on
    byte-identical arrays.
    """
    seed_users: Dict[str, np.ndarray] = {}
    for key in DOMAIN_KEYS:
        parts = [part for part in seed_parts[key] if part.size]
        seed_users[key] = np.unique(np.concatenate(parts)) if parts else _EMPTY

    partnered: Dict[str, np.ndarray] = {}
    for key in DOMAIN_KEYS:
        lookup = task.partner_lookup(key)
        partners = lookup[seed_users[key]] if seed_users[key].size else _EMPTY
        partnered[task.other_key(key)] = partners[partners >= 0]
    for key in DOMAIN_KEYS:
        if partnered[key].size:
            seed_users[key] = np.unique(np.concatenate([seed_users[key], partnered[key]]))
    return seed_users


def finalize_subgraph_plan(
    task: CDRTask,
    batch_users: Dict[str, np.ndarray],
    batch_items: Dict[str, np.ndarray],
    seed_users: Dict[str, np.ndarray],
    intra_pools: Dict[str, list],
    inter_pools: Dict[str, list],
    settings: SubgraphSettings,
    caches: Dict[str, SubgraphCache],
    node_sets: Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]] = None,
) -> SubgraphPlan:
    """Extract both domains' induced subgraphs and localise every index set.

    ``node_sets`` optionally carries pre-expanded k-hop node sets per domain
    (the incremental schedule's delta expansion); they are forwarded to the
    subgraph cache and must equal what the sampler would have produced.
    """
    domains: Dict[str, DomainSubgraphPlan] = {}
    for key in DOMAIN_KEYS:
        if seed_users[key].size == 0 and batch_items[key].size == 0:
            domains[key] = DomainSubgraphPlan(subgraph=None)
            continue
        nodes = None if node_sets is None else node_sets.get(key)
        if nodes is not None:
            # Pre-expanded delta path: key the cache on the node sets
            # themselves — no seed canonicalisation, no k-hop re-expansion,
            # and steps whose expansions coincide share one subgraph.
            subgraph = caches[key].get_by_nodes(
                task.domain(key).train_graph,
                nodes[0],
                nodes[1],
                num_hops=settings.num_hops,
                fanout=settings.fanout,
            )
        else:
            subgraph = caches[key].get(
                task.domain(key).train_graph,
                seed_users[key],
                batch_items[key],
                num_hops=settings.num_hops,
                fanout=settings.fanout,
            )
        domains[key] = DomainSubgraphPlan(
            subgraph=subgraph,
            batch_users=subgraph.local_users(batch_users[key]),
            batch_items=subgraph.local_items(batch_items[key]),
            intra_pools=[
                (subgraph.local_users(head), subgraph.local_users(tail))
                for head, tail in intra_pools[key]
            ],
        )

    # Localise the cross-domain index sets now that both subgraphs exist.
    for key in DOMAIN_KEYS:
        plan = domains[key]
        if not plan.active:
            continue
        other = task.other_key(key)
        other_plan = domains[other]
        if other_plan.active:
            own_pairs = task.overlap_indices(key)
            other_pairs = task.overlap_indices(other)
            present = plan.subgraph.contains_users(own_pairs) & (
                other_plan.subgraph.contains_users(other_pairs)
            )
            if present.all():
                # Full coverage (common once the pool closure spans the
                # overlap): keep the memoised column arrays themselves so
                # the localisation below hits the subgraph's identity memo.
                own_kept, other_kept = own_pairs, other_pairs
            else:
                own_kept, other_kept = own_pairs[present], other_pairs[present]
            plan.overlap_own = plan.subgraph.local_users(own_kept)
            plan.overlap_other = other_plan.subgraph.local_users(other_kept)
            plan.inter_pools = [
                other_plan.subgraph.local_users(pool) for pool in inter_pools[key]
            ]
        else:
            plan.inter_pools = [_EMPTY for _ in inter_pools[key]]

    return SubgraphPlan(domains=domains, settings=settings)


def build_subgraph_plan_from_pools(
    task: CDRTask,
    config: NMCDRConfig,
    batches: Dict[str, Optional[Batch]],
    intra_pools: Dict[str, list],
    inter_pools: Dict[str, list],
    settings: SubgraphSettings,
    caches: Dict[str, SubgraphCache],
) -> SubgraphPlan:
    """Build a step plan from pre-drawn matching pools (no sampler rng).

    This is :func:`build_subgraph_plan` with the pool draws factored out:
    the sharded executor draws pools once per step in the parent process
    (:func:`sample_matching_pools`) and every shard worker localises its own
    micro-batch around the *same* pools, consuming no rng of its own.
    """
    batch_users, batch_items = batch_index_arrays(batches)

    # Seed users: batch rows, this domain's intra pools, and the pools of this
    # domain's users that the *other* domain's inter step aggregates.
    seed_parts: Dict[str, list] = {}
    for key in DOMAIN_KEYS:
        other = task.other_key(key)
        parts = [batch_users[key]]
        parts.extend(pool for pools in intra_pools[key] for pool in pools)
        parts.extend(inter_pools[other])  # pools of `key`'s non-overlapped users
        seed_parts[key] = parts
    seed_users = close_seed_users(task, seed_parts)

    return finalize_subgraph_plan(
        task,
        batch_users,
        batch_items,
        seed_users,
        intra_pools,
        inter_pools,
        settings,
        caches,
    )


def build_subgraph_plan(
    task: CDRTask,
    config: NMCDRConfig,
    batches: Dict[str, Optional[Batch]],
    sampler: MatchingNeighborSampler,
    settings: SubgraphSettings,
    caches: Dict[str, SubgraphCache],
) -> SubgraphPlan:
    """Sample pools, extract both domains' induced subgraphs and localise ids."""
    intra_pools, inter_pools = sample_matching_pools(task, config, sampler)
    return build_subgraph_plan_from_pools(
        task, config, batches, intra_pools, inter_pools, settings, caches
    )
