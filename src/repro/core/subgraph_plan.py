"""Per-step subgraph plans for sampled NMCDR training.

A :class:`SubgraphPlan` captures everything one sampled training step needs:
the per-domain induced k-hop subgraphs around the mini-batches and the
*local* index arrays for every stage of the NMCDR pipeline — batch rows,
per-layer intra-matching head/tail pools, the cross-domain overlap alignment
and the per-layer inter-matching pools.

The plan builder must include every node whose representation the restricted
forward pass reads, otherwise the computation silently diverges from the
full-graph one.  The required closure is:

* **batch users/items** of each domain (the loss rows);
* **intra-matching pools** — the head/tail group messages are means over the
  pooled users' encoder outputs, so pool users need their own k-hop
  neighbourhoods (Eq. 8–9);
* **inter-matching pools** — each domain's update aggregates sampled
  non-overlapped users *of the other domain* (Eq. 12–13);
* **overlap partners** of every seed user: the self message of Eq. 12/13 is
  the same person's representation in the other domain, and with stacked
  matching layers the partner's own earlier-layer state must also be exact,
  which one partner-closure round guarantees (partner-of-partner is the user
  itself).

Pools are sampled *before* the subgraph is extracted, in exactly the order
the full-graph forward would consume the matching sampler's rng stream (intra
pools for both domains, then inter pools, layer by layer) — so a sampled step
and a full-graph step starting from the same sampler state use identical
pools, which is what makes the float64 equivalence test meaningful even with
a finite ``max_matching_neighbors``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.dataloader import Batch
from ..data.shard import domain_shard_salt, shard_assignments
from ..graph import MatchingNeighborSampler, SubgraphCache
from ..graph.sampling import DomainSubgraph
from .config import NMCDRConfig
from .task import CDRTask, DOMAIN_KEYS

__all__ = [
    "SubgraphSettings",
    "DomainSubgraphPlan",
    "SubgraphPlan",
    "PoolExchange",
    "build_subgraph_plan",
    "build_subgraph_plan_from_pools",
    "build_pool_exchange",
    "build_pool_sharded_plan",
    "sample_matching_pools",
    "batch_index_arrays",
    "close_seed_users",
    "finalize_subgraph_plan",
]

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass
class SubgraphSettings:
    """Resolved knobs of the sampled-subgraph training mode."""

    num_hops: int
    fanout: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_hops < 1:
            raise ValueError("num_hops must be >= 1")
        if self.fanout is not None and self.fanout < 1:
            raise ValueError("fanout must be positive or None")


@dataclass
class DomainSubgraphPlan:
    """Local-id view of one domain for one sampled training step."""

    subgraph: Optional[DomainSubgraph]
    #: Local rows of the mini-batch examples (aligned with the batch labels).
    batch_users: np.ndarray = field(default_factory=lambda: _EMPTY)
    batch_items: np.ndarray = field(default_factory=lambda: _EMPTY)
    #: Per matching layer: local (head_pool, tail_pool) of the intra step.
    intra_pools: List[Tuple[np.ndarray, np.ndarray]] = field(default_factory=list)
    #: Per matching layer: local ids *in the other domain's subgraph* of the
    #: sampled non-overlapped pool aggregated by this domain's inter step.
    inter_pools: List[np.ndarray] = field(default_factory=list)
    #: Aligned local overlap alignment: row k of ``overlap_own`` (this domain)
    #: and ``overlap_other`` (other domain) refer to the same person.
    overlap_own: np.ndarray = field(default_factory=lambda: _EMPTY)
    overlap_other: np.ndarray = field(default_factory=lambda: _EMPTY)
    #: Pool-sharded execution only (see :func:`build_pool_sharded_plan`).
    #: Number of exchange-table rows appended after the local subgraph rows in
    #: the matching stage's *combined* row space; the pool/overlap index
    #: arrays above then address ``local ∪ table`` rows.
    exchange_size: int = 0
    #: Local subgraph rows of the exchange users this shard owns (the rows
    #: whose encoder activations phase 1 extracts and ships), aligned with
    #: ``owned_positions`` — the owned users' row positions in the step's
    #: exchange table.
    owned_local: np.ndarray = field(default_factory=lambda: _EMPTY)
    owned_positions: np.ndarray = field(default_factory=lambda: _EMPTY)

    @property
    def active(self) -> bool:
        return self.subgraph is not None and self.subgraph.num_users > 0

    @property
    def local_rows(self) -> int:
        """Rows of the local subgraph (0 when the domain has none)."""
        return self.subgraph.num_users if self.subgraph is not None else 0


@dataclass
class SubgraphPlan:
    """Both domains' :class:`DomainSubgraphPlan` for one training step."""

    domains: Dict[str, DomainSubgraphPlan]
    settings: SubgraphSettings
    #: True when the pool/overlap indices address the pool-sharded *combined*
    #: row space (local subgraph rows followed by exchange-table rows).
    pool_sharded: bool = False

    def domain(self, key: str) -> DomainSubgraphPlan:
        return self.domains[key]

    def is_active(self, key: str) -> bool:
        """Whether the forward pass must process this domain at all.

        A pool-sharded domain with an empty local subgraph is still active
        when it carries exchange-table rows: the other domain's inter step
        reads those rows, so their matching recursion must run.
        """
        plan = self.domains[key]
        return plan.active or (self.pool_sharded and plan.exchange_size > 0)


def sample_matching_pools(
    task: CDRTask, config: NMCDRConfig, sampler: MatchingNeighborSampler
) -> Tuple[Dict[str, list], Dict[str, list]]:
    """Draw every matching pool for one step, mirroring the full-forward order.

    One call consumes exactly the sampler rng a full-graph forward pass
    would, which is what lets the sharded executor draw pools once in the
    parent process (keeping its rng stream — and therefore mid-training
    evaluation — identical to the serial executor's) and ship the drawn
    pools to every shard worker.
    """
    intra: Dict[str, list] = {key: [] for key in DOMAIN_KEYS}
    inter: Dict[str, list] = {key: [] for key in DOMAIN_KEYS}
    for _ in range(config.num_matching_layers):
        if config.use_intra_matching:
            for key in DOMAIN_KEYS:
                intra[key].append(sampler.sample_partition(task.domain(key).partition))
        if config.use_inter_matching:
            for key in DOMAIN_KEYS:
                other = task.other_key(key)
                inter[key].append(sampler.sample(task.non_overlap_indices(other)))
    return intra, inter


# Backwards-compatible private alias (pre-sharding name).
_sample_pools = sample_matching_pools


def batch_index_arrays(
    batches: Dict[str, Optional[Batch]],
) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]:
    """Per-domain (users, items) int64 arrays of the step's mini-batches."""
    batch_users: Dict[str, np.ndarray] = {}
    batch_items: Dict[str, np.ndarray] = {}
    for key in DOMAIN_KEYS:
        batch = batches.get(key)
        if batch is None or len(batch) == 0:
            batch_users[key] = _EMPTY
            batch_items[key] = _EMPTY
        else:
            batch_users[key] = np.asarray(batch.users, dtype=np.int64)
            batch_items[key] = np.asarray(batch.items, dtype=np.int64)
    return batch_users, batch_items


def close_seed_users(
    task: CDRTask, seed_parts: Dict[str, list]
) -> Dict[str, np.ndarray]:
    """Union the per-domain seed parts and apply one partner-closure round.

    One round suffices — partner of partner is the user itself — and union
    with :func:`np.unique` makes the result independent of how the caller
    grouped the parts, which is what lets the incremental schedule assemble
    seeds as (cached static closure) ∪ (per-step batch closure) and land on
    byte-identical arrays.
    """
    seed_users: Dict[str, np.ndarray] = {}
    for key in DOMAIN_KEYS:
        parts = [part for part in seed_parts[key] if part.size]
        seed_users[key] = np.unique(np.concatenate(parts)) if parts else _EMPTY

    partnered: Dict[str, np.ndarray] = {}
    for key in DOMAIN_KEYS:
        lookup = task.partner_lookup(key)
        partners = lookup[seed_users[key]] if seed_users[key].size else _EMPTY
        partnered[task.other_key(key)] = partners[partners >= 0]
    for key in DOMAIN_KEYS:
        if partnered[key].size:
            seed_users[key] = np.unique(np.concatenate([seed_users[key], partnered[key]]))
    return seed_users


def finalize_subgraph_plan(
    task: CDRTask,
    batch_users: Dict[str, np.ndarray],
    batch_items: Dict[str, np.ndarray],
    seed_users: Dict[str, np.ndarray],
    intra_pools: Dict[str, list],
    inter_pools: Dict[str, list],
    settings: SubgraphSettings,
    caches: Dict[str, SubgraphCache],
    node_sets: Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]] = None,
) -> SubgraphPlan:
    """Extract both domains' induced subgraphs and localise every index set.

    ``node_sets`` optionally carries pre-expanded k-hop node sets per domain
    (the incremental schedule's delta expansion); they are forwarded to the
    subgraph cache and must equal what the sampler would have produced.
    """
    domains: Dict[str, DomainSubgraphPlan] = {}
    for key in DOMAIN_KEYS:
        if seed_users[key].size == 0 and batch_items[key].size == 0:
            domains[key] = DomainSubgraphPlan(subgraph=None)
            continue
        nodes = None if node_sets is None else node_sets.get(key)
        if nodes is not None:
            # Pre-expanded delta path: key the cache on the node sets
            # themselves — no seed canonicalisation, no k-hop re-expansion,
            # and steps whose expansions coincide share one subgraph.
            subgraph = caches[key].get_by_nodes(
                task.domain(key).train_graph,
                nodes[0],
                nodes[1],
                num_hops=settings.num_hops,
                fanout=settings.fanout,
            )
        else:
            subgraph = caches[key].get(
                task.domain(key).train_graph,
                seed_users[key],
                batch_items[key],
                num_hops=settings.num_hops,
                fanout=settings.fanout,
            )
        domains[key] = DomainSubgraphPlan(
            subgraph=subgraph,
            batch_users=subgraph.local_users(batch_users[key]),
            batch_items=subgraph.local_items(batch_items[key]),
            intra_pools=[
                (subgraph.local_users(head), subgraph.local_users(tail))
                for head, tail in intra_pools[key]
            ],
        )

    # Localise the cross-domain index sets now that both subgraphs exist.
    for key in DOMAIN_KEYS:
        plan = domains[key]
        if not plan.active:
            continue
        other = task.other_key(key)
        other_plan = domains[other]
        if other_plan.active:
            own_pairs = task.overlap_indices(key)
            other_pairs = task.overlap_indices(other)
            present = plan.subgraph.contains_users(own_pairs) & (
                other_plan.subgraph.contains_users(other_pairs)
            )
            if present.all():
                # Full coverage (common once the pool closure spans the
                # overlap): keep the memoised column arrays themselves so
                # the localisation below hits the subgraph's identity memo.
                own_kept, other_kept = own_pairs, other_pairs
            else:
                own_kept, other_kept = own_pairs[present], other_pairs[present]
            plan.overlap_own = plan.subgraph.local_users(own_kept)
            plan.overlap_other = other_plan.subgraph.local_users(other_kept)
            plan.inter_pools = [
                other_plan.subgraph.local_users(pool) for pool in inter_pools[key]
            ]
        else:
            plan.inter_pools = [_EMPTY for _ in inter_pools[key]]

    return SubgraphPlan(domains=domains, settings=settings)


def build_subgraph_plan_from_pools(
    task: CDRTask,
    config: NMCDRConfig,
    batches: Dict[str, Optional[Batch]],
    intra_pools: Dict[str, list],
    inter_pools: Dict[str, list],
    settings: SubgraphSettings,
    caches: Dict[str, SubgraphCache],
) -> SubgraphPlan:
    """Build a step plan from pre-drawn matching pools (no sampler rng).

    This is :func:`build_subgraph_plan` with the pool draws factored out:
    the sharded executor draws pools once per step in the parent process
    (:func:`sample_matching_pools`) and every shard worker localises its own
    micro-batch around the *same* pools, consuming no rng of its own.
    """
    batch_users, batch_items = batch_index_arrays(batches)

    # Seed users: batch rows, this domain's intra pools, and the pools of this
    # domain's users that the *other* domain's inter step aggregates.
    seed_parts: Dict[str, list] = {}
    for key in DOMAIN_KEYS:
        other = task.other_key(key)
        parts = [batch_users[key]]
        parts.extend(pool for pools in intra_pools[key] for pool in pools)
        parts.extend(inter_pools[other])  # pools of `key`'s non-overlapped users
        seed_parts[key] = parts
    seed_users = close_seed_users(task, seed_parts)

    return finalize_subgraph_plan(
        task,
        batch_users,
        batch_items,
        seed_users,
        intra_pools,
        inter_pools,
        settings,
        caches,
    )


def build_subgraph_plan(
    task: CDRTask,
    config: NMCDRConfig,
    batches: Dict[str, Optional[Batch]],
    sampler: MatchingNeighborSampler,
    settings: SubgraphSettings,
    caches: Dict[str, SubgraphCache],
) -> SubgraphPlan:
    """Sample pools, extract both domains' induced subgraphs and localise ids."""
    intra_pools, inter_pools = sample_matching_pools(task, config, sampler)
    return build_subgraph_plan_from_pools(
        task, config, batches, intra_pools, inter_pools, settings, caches
    )


# ----------------------------------------------------------------------
# pool-sharded execution: partitioned pool closures + activation exchange
# ----------------------------------------------------------------------
@dataclass
class PoolExchange:
    """Shard partition of one step's matching-pool closure.

    ``users[key]`` holds the global ids of the *exchange set* of a domain —
    every user whose representation the matching stages read without it
    being reachable from a shard's own micro-batch: the step's intra/inter
    pool users plus their overlap partners (one partner-closure round,
    exactly :func:`close_seed_users` over the pools alone).
    ``owners[key]`` assigns each exchange user to the single shard that
    encodes it (the same salted user-id modulo that routes micro-batches,
    so a pool user's examples and its encoder neighbourhood land on one
    shard).  Every shard's matching stage reads the *full* table of
    exchanged encoder activations; only the encoding (and the mirrored
    encoder backward) is partitioned.

    :func:`build_pool_exchange` lays the table out **owner-grouped**: table
    row order is (shard 0's users, shard 1's users, …), sorted within each
    shard's block.  A shard's owned rows are then one contiguous range
    (:meth:`owned_range`) — which is what lets the shared-memory exchange
    plane publish activations by writing a single in-place slice, and ship
    the gradient scatter as a bare row range.  Table rows are resolved by
    value through :meth:`rows_for` (a sorted side lookup built once), so
    nothing downstream depends on the row order itself; a hand-built
    exchange with any other order still works, just without the contiguous
    fast path.
    """

    users: Dict[str, np.ndarray]
    owners: Dict[str, np.ndarray]
    n_shards: int

    def __post_init__(self) -> None:
        # Sorted-value lookup (users need not be globally sorted) and, when
        # the layout is owner-grouped, per-shard contiguous row ranges.
        self._sorted_users: Dict[str, np.ndarray] = {}
        self._sorted_rows: Dict[str, np.ndarray] = {}
        self._owner_starts: Dict[str, Optional[np.ndarray]] = {}
        for key, users in self.users.items():
            order = np.argsort(users, kind="stable")
            self._sorted_users[key] = users[order]
            self._sorted_rows[key] = order.astype(np.int64)
            owners = self.owners[key]
            if owners.size and np.any(np.diff(owners) < 0):
                self._owner_starts[key] = None  # not owner-grouped
            else:
                counts = np.bincount(owners, minlength=self.n_shards)
                starts = np.zeros(self.n_shards + 1, dtype=np.int64)
                np.cumsum(counts, out=starts[1:])
                self._owner_starts[key] = starts

    def owned_range(self, key: str, shard_index: int) -> Optional[Tuple[int, int]]:
        """Contiguous table-row range of one shard, or None if not grouped."""
        starts = self._owner_starts[key]
        if starts is None:
            return None
        return int(starts[shard_index]), int(starts[shard_index + 1])

    def owned_positions(self, key: str, shard_index: int) -> np.ndarray:
        """Table-row positions of the exchange users ``shard_index`` owns."""
        owned = self.owned_range(key, shard_index)
        if owned is not None:
            return np.arange(owned[0], owned[1], dtype=np.int64)
        return np.flatnonzero(self.owners[key] == shard_index)

    def owned_users(self, key: str, shard_index: int) -> np.ndarray:
        """Global ids of the exchange users ``shard_index`` owns (sorted)."""
        owned = self.owned_range(key, shard_index)
        if owned is not None:
            return self.users[key][owned[0] : owned[1]]
        return self.users[key][self.owners[key] == shard_index]

    def rows_for(self, key: str, global_ids: np.ndarray) -> np.ndarray:
        """Table rows of ``global_ids`` (every id must be in the exchange)."""
        if global_ids.size == 0:
            return _EMPTY
        sorted_users = self._sorted_users[key]
        positions = np.searchsorted(sorted_users, global_ids)
        if positions.size and (
            positions.max(initial=-1) >= sorted_users.size
            or not np.array_equal(sorted_users[positions], global_ids)
        ):
            missing = np.setdiff1d(global_ids, sorted_users)[:5]
            raise KeyError(
                f"users {missing.tolist()} are not part of the pool exchange"
            )
        return self._sorted_rows[key][positions]

    def size(self, key: str) -> int:
        return int(self.users[key].size)


def build_pool_exchange(
    task: CDRTask,
    intra_pools: Dict[str, list],
    inter_pools: Dict[str, list],
    n_shards: int,
) -> PoolExchange:
    """Partition one step's pool closure across ``n_shards`` shards.

    The exchange set is the pool-side seed closure the replicated executor
    would fold into *every* shard's subgraph; ownership is the pure salted
    modulo of :func:`repro.data.shard.shard_assignments`, so the partition
    is deterministic and machine-independent (the equivalence gates compare
    loss streams against the replicated executor).
    """
    seed_parts: Dict[str, list] = {}
    for key in DOMAIN_KEYS:
        other = task.other_key(key)
        parts: List = []
        for head, tail in intra_pools[key]:
            parts.append(head)
            parts.append(tail)
        parts.extend(inter_pools[other])  # pools of `key`'s non-overlapped users
        seed_parts[key] = parts
    users = close_seed_users(task, seed_parts)
    owners: Dict[str, np.ndarray] = {}
    for key in DOMAIN_KEYS:
        assigned = shard_assignments(users[key], n_shards, salt=domain_shard_salt(key))
        # Owner-grouped table layout: rows of one shard are contiguous, and
        # the stable sort keeps each shard's block sorted by user id — so
        # owned_users/owned_local alignment is unchanged from the sorted
        # layout while owned rows become a single range (the zero-copy
        # publish/scatter fast path of the shm exchange plane).
        order = np.argsort(assigned, kind="stable")
        users[key] = users[key][order]
        owners[key] = assigned[order]
    return PoolExchange(users=users, owners=owners, n_shards=n_shards)


def _table_rows(
    exchange: PoolExchange, key: str, global_ids: np.ndarray
) -> np.ndarray:
    """Table rows of ``global_ids`` in a domain's exchange set (must exist)."""
    return exchange.rows_for(key, global_ids)


def build_pool_sharded_plan(
    task: CDRTask,
    config: NMCDRConfig,
    batches: Dict[str, Optional[Batch]],
    intra_pools: Dict[str, list],
    inter_pools: Dict[str, list],
    exchange: PoolExchange,
    shard_index: int,
    settings: SubgraphSettings,
    caches: Dict[str, SubgraphCache],
    node_sets: Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]] = None,
    batch_closed: Optional[Dict[str, np.ndarray]] = None,
) -> SubgraphPlan:
    """One shard's plan with the pool closure replaced by its owned slice.

    The shard's subgraph seeds are its micro-batch closure plus the
    exchange users it *owns* — per-shard extraction and encoding cost
    therefore follows ``batch + pool/n_shards`` instead of
    ``batch + pool``.  Pool and overlap references resolve in the
    *combined* row space: local subgraph rows first, then one appended row
    per exchange user (the activation table gathered from all shards).
    Exchange users that also sit in the local subgraph keep both rows; the
    table copy serves every pool/partner read (its value is bit-identical
    by the encoder-exactness contract), the local copy serves the
    micro-batch recursion — which is what keeps per-row values equal to the
    replicated executor's single-copy forward.

    ``node_sets`` optionally carries pre-expanded per-domain k-hop node
    sets (the incremental planner's delta path); they must equal the
    single-pass expansion of the seed union.  ``batch_closed`` optionally
    reuses the caller's partner-closed micro-batch seed sets (the planner
    already computed them for its delta) instead of re-deriving them.
    """
    batch_users, batch_items = batch_index_arrays(batches)
    if batch_closed is None:
        batch_closed = close_seed_users(
            task, {key: [batch_users[key]] for key in DOMAIN_KEYS}
        )

    domains: Dict[str, DomainSubgraphPlan] = {}
    for key in DOMAIN_KEYS:
        owned = exchange.owned_users(key, shard_index)
        seed_users = (
            np.union1d(batch_closed[key], owned) if owned.size else batch_closed[key]
        )
        exchange_size = exchange.size(key)
        if seed_users.size == 0 and batch_items[key].size == 0:
            domains[key] = DomainSubgraphPlan(
                subgraph=None, exchange_size=exchange_size
            )
            continue
        nodes = None if node_sets is None else node_sets.get(key)
        if nodes is not None:
            subgraph = caches[key].get_by_nodes(
                task.domain(key).train_graph,
                nodes[0],
                nodes[1],
                num_hops=settings.num_hops,
                fanout=settings.fanout,
            )
        else:
            subgraph = caches[key].get(
                task.domain(key).train_graph,
                seed_users,
                batch_items[key],
                num_hops=settings.num_hops,
                fanout=settings.fanout,
            )
        domains[key] = DomainSubgraphPlan(
            subgraph=subgraph,
            batch_users=subgraph.local_users(batch_users[key]),
            batch_items=subgraph.local_items(batch_items[key]),
            exchange_size=exchange_size,
            owned_local=subgraph.local_users(owned),
            owned_positions=exchange.owned_positions(key, shard_index),
        )

    # Pool and overlap references in the combined (local ∪ table) row space.
    for key in DOMAIN_KEYS:
        plan = domains[key]
        other = task.other_key(key)
        other_plan = domains[other]
        base = plan.local_rows
        other_base = other_plan.local_rows

        plan.intra_pools = [
            (
                base + _table_rows(exchange, key, head),
                base + _table_rows(exchange, key, tail),
            )
            for head, tail in intra_pools[key]
        ]
        plan.inter_pools = [
            other_base + _table_rows(exchange, other, pool)
            for pool in inter_pools[key]
        ]

        # Overlap pairs over the local rows: exactly the replicated rule
        # (pairs present in both shards' local subgraphs) — batch users'
        # partners are in the micro-batch closure, so every *read* local row
        # resolves its pair; extra pairs touch only unread rows.
        if plan.active and other_plan.active:
            own_pairs = task.overlap_indices(key)
            other_pairs = task.overlap_indices(other)
            present = plan.subgraph.contains_users(own_pairs) & (
                other_plan.subgraph.contains_users(other_pairs)
            )
            if present.all():
                own_kept, other_kept = own_pairs, other_pairs
            else:
                own_kept, other_kept = own_pairs[present], other_pairs[present]
            local_own = plan.subgraph.local_users(own_kept)
            local_other = other_plan.subgraph.local_users(other_kept)
        else:
            local_own = local_other = _EMPTY

        # Overlap pairs over the table rows: every overlapped exchange user's
        # partner is in the other domain's exchange set (the partner-closure
        # round of ``build_pool_exchange``), so the pair always resolves.
        exchange_users = exchange.users[key]
        partners = (
            task.partner_lookup(key)[exchange_users] if exchange_users.size else _EMPTY
        )
        overlapped = partners >= 0
        if overlapped.any():
            table_own = base + np.flatnonzero(overlapped)
            table_other = other_base + _table_rows(
                exchange, other, partners[overlapped]
            )
        else:
            table_own = table_other = _EMPTY

        plan.overlap_own = np.concatenate([local_own, table_own])
        plan.overlap_other = np.concatenate([local_other, table_other])

    return SubgraphPlan(domains=domains, settings=settings, pool_sharded=True)
