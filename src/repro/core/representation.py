"""The explicit representation-model protocol behind training and serving.

PR 5 split NMCDR's forward into ``encode_representations`` (stages 0/1 —
the per-user encoder outputs) and ``match_representations`` (stages 2–4 —
matching and complementing) so the pool-sharded executor could exchange
activations at that boundary.  This module promotes the split from an
informal convention probed with ``hasattr`` into a declared protocol:

* :class:`~repro.nn.ModelCapabilities` (re-exported here) is the flag set a
  model returns from ``capabilities()``; every consumer — the trainer, both
  sharded executors, the training engine and :mod:`repro.serve` — branches
  on those flags instead of probing method names.
* :class:`RepresentationModel` is the structural type of a model that
  declares ``encode_match_split``: the serving tier builds its persistent
  representation store from ``encode_representations`` +
  ``match_representations`` and scores store rows through ``score_pairs``.

A model that sets a capability flag without implementing the corresponding
methods fails loudly at the first call site — the protocol is a contract,
not a runtime fallback.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol, runtime_checkable

import numpy as np

from ..nn import ModelCapabilities

__all__ = ["ModelCapabilities", "RepresentationModel"]


@runtime_checkable
class RepresentationModel(Protocol):
    """A model whose forward factors through the encode/match boundary.

    ``encode_representations`` returns per-domain tables carrying at least
    ``user_g1`` (the per-user encoder outputs) and ``items``;
    ``match_representations`` evolves them through the matching stages,
    adding ``user_g3`` (the matching-module output — the cold-start serving
    path) and ``user_g4`` (the complemented head input).  ``score_pairs``
    runs the domain's prediction head over already-gathered representation
    rows, which is how the serving scorer turns store rows into
    probabilities without a model forward.
    """

    def capabilities(self) -> ModelCapabilities: ...

    def encode_representations(
        self,
        plan: Optional[object] = None,
        *,
        keys: Optional[tuple] = None,
    ) -> Dict[str, dict]: ...

    def match_representations(
        self,
        reps: Dict[str, dict],
        plan: Optional[object] = None,
        pool_tables: Optional[dict] = None,
    ) -> Dict[str, dict]: ...

    def score_pairs(
        self, domain_key: str, user_rows: np.ndarray, item_rows: np.ndarray
    ) -> np.ndarray: ...
