"""Inter node matching component (Section II.D.2).

Transfers knowledge across domains on a fully connected cross-domain
user–user graph.  For every user of domain Z:

* the *self* message (Eq. 12/13, top) comes from the same person's
  representation in the other domain — only defined for overlapped users,
  zero otherwise;
* the *other* message (Eq. 12/13, bottom) aggregates all (sampled)
  non-overlapped users of the other domain with ``1/|N|`` normalisation,
  i.e. the transformed mean of that pool;
* Eq. 15 mixes the user's own state with the self message through the crossed
  transformation matrices ``W_cross^Z`` / ``W_cross^Z̄``;
* Eq. 16 gates in the other-user message and Eq. 17 adds the residual.

The component owns the per-domain parameters; :class:`InterNodeMatching`
operates on one domain at a time and the NMCDR model wires the two domains'
``CrossMix`` matrices in the crossed pattern required by Eq. 15.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph import MatchingNeighborSampler
from ..nn import CrossMix, FineGrainedGate, Linear, Module
from ..tensor import Tensor, ops

__all__ = ["InterNodeMatching"]


class InterNodeMatching(Module):
    """Per-domain parameters and forward pass of the inter node matching step."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_dim != out_dim:
            raise ValueError(
                "inter node matching requires in_dim == out_dim for the residual of Eq. 17 "
                f"(got {in_dim} and {out_dim}); the paper sets D_igm = D_cgm"
            )
        self.in_dim = int(in_dim)
        self.out_dim = int(out_dim)
        # f_self / f_other of Eq. 13.
        self.self_transform = Linear(in_dim, out_dim, rng=rng)
        self.other_transform = Linear(in_dim, out_dim, rng=rng)
        # W_cross^Z of Eq. 15 (this domain's matrix).
        self.cross = CrossMix(out_dim, rng=rng)
        # Gate of Eq. 16.
        self.gate = FineGrainedGate(out_dim, rng=rng)

    def forward(
        self,
        user_repr: Tensor,
        other_user_repr: Tensor,
        own_overlap_indices: np.ndarray,
        other_overlap_indices: np.ndarray,
        other_non_overlap_indices: np.ndarray,
        other_cross: CrossMix,
        sampler: Optional[MatchingNeighborSampler] = None,
    ) -> Tensor:
        """Return ``u_g3`` for this domain.

        Parameters
        ----------
        user_repr:
            ``u_g2`` of this domain, shape ``(num_users, D)``.
        other_user_repr:
            ``u_g2`` of the other domain.
        own_overlap_indices / other_overlap_indices:
            Aligned local indices of the overlapped users in this / the other
            domain (row ``k`` of both arrays refers to the same person).
        other_non_overlap_indices:
            Local indices of the other domain's non-overlapped users.
        other_cross:
            The other domain's ``W_cross`` (Eq. 15 uses both matrices).
        """
        sampler = sampler or MatchingNeighborSampler()
        num_users = user_repr.shape[0]
        dim = self.out_dim

        # --- Eq. 15: crossed transformation mixing ----------------------
        # The self message (Eq. 12/13 top) is zero outside the overlap, and
        # ``complement`` is linear with no bias, so it is applied to the
        # overlapped rows only and the result scattered — instead of pushing
        # a mostly-zero full-size matrix through a dense transform.
        mixed = self.cross(user_repr)
        if own_overlap_indices.size:
            partner_repr = ops.gather_rows(other_user_repr, other_overlap_indices)
            partner_message = ops.relu(self.self_transform(partner_repr))  # Eq. 14 top
            mixed = mixed + ops.scatter_rows(
                other_cross.complement(partner_message), own_overlap_indices, num_users
            )

        # --- other message (non-overlapped users of the other domain) ---
        pool = sampler.sample(other_non_overlap_indices)
        if pool.size:
            pooled = ops.gather_rows(other_user_repr, pool)
            other_message = ops.relu(
                self.other_transform(pooled.mean(axis=0, keepdims=True)),
            )
        else:
            other_message = Tensor(np.zeros((1, dim)))

        # --- Eq. 16: gate in the non-overlapped message ------------------
        # ``other_message`` stays (1, D): every user receives the same
        # non-overlapped aggregate, numpy broadcasting handles the rest.
        gated = self.gate(mixed, other_message)

        # --- Eq. 17: residual --------------------------------------------
        return gated + user_repr
