"""Intra node matching component (Section II.D.1).

A fully connected user–user homogeneous graph is built inside each domain and
every user aggregates messages from all *head* users and all *tail* users
through two separate learnable transformations (Eq. 6–9), fused by the
fine-grained gate of Eq. 10 and added back residually (Eq. 11).

Because the graph is fully connected and normalised by ``1/|N|``, the
aggregated head (resp. tail) message is the transformed mean of the sampled
head (resp. tail) users' representations; computing the mean first keeps the
cost linear in the number of users.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..graph import HeadTailPartition, MatchingNeighborSampler
from ..nn import FineGrainedGate, Linear, Module
from ..tensor import Tensor, ops

__all__ = ["IntraNodeMatching"]


class IntraNodeMatching(Module):
    """One intra-domain node-matching layer.

    Parameters
    ----------
    in_dim:
        Dimension of the incoming user representations (``D_hge``).
    out_dim:
        Transformation dimension ``D_igm``.  Must equal ``in_dim`` for the
        residual connection of Eq. 11; validated at construction time.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_dim != out_dim:
            raise ValueError(
                "intra node matching requires in_dim == out_dim for the residual of Eq. 11 "
                f"(got {in_dim} and {out_dim}); the paper sets D_hge = D_igm"
            )
        self.in_dim = int(in_dim)
        self.out_dim = int(out_dim)
        # f_head / f_tail of Eq. 8 — distinct transformations per user group,
        # which is exactly what the stability analysis of Sec. II.H motivates.
        self.head_transform = Linear(in_dim, out_dim, rng=rng)
        self.tail_transform = Linear(in_dim, out_dim, rng=rng)
        # Fine-grained gate of Eq. 10.
        self.gate = FineGrainedGate(out_dim, rng=rng)

    def forward(
        self,
        user_repr: Tensor,
        partition: Optional[HeadTailPartition] = None,
        sampler: Optional[MatchingNeighborSampler] = None,
        pools: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> Tensor:
        """Return ``u_g2`` given ``u_g1`` and the domain's head/tail partition.

        ``pools`` overrides the partition sampling with pre-drawn
        ``(head_pool, tail_pool)`` index arrays — the sampled-subgraph
        training path draws the pools up front (they are subgraph seeds) and
        passes their local ids here.
        """
        if pools is not None:
            head_pool, tail_pool = pools
        else:
            if partition is None:
                raise ValueError(
                    "intra matching needs either a partition or explicit pools",
                )
            sampler = sampler or MatchingNeighborSampler()
            head_pool, tail_pool = sampler.sample_partition(partition)

        head_message = self._group_message(user_repr, head_pool, self.head_transform)
        tail_message = self._group_message(user_repr, tail_pool, self.tail_transform)

        # Every user receives the same group-level messages (fully connected
        # graph), so the gate is evaluated once on the (1, D) messages and
        # only the fused result is broadcast — the naive formulation ran the
        # gate's two projections over the full user table for identical rows.
        fused = self.gate(head_message, tail_message)
        num_users = user_repr.shape[0]
        return ops.broadcast_rows(fused, num_users) + user_repr  # Eq. 11 residual

    def _group_message(
        self,
        user_repr: Tensor,
        pool: np.ndarray,
        transform: Linear,
    ) -> Tensor:
        """Eq. 8–9: transformed mean of the pooled users, ReLU-activated."""
        if pool.size == 0:
            return Tensor(np.zeros((1, self.out_dim)))
        pooled = ops.gather_rows(user_repr, pool)
        mean = pooled.mean(axis=0, keepdims=True)
        return ops.relu(transform(mean))
