"""Adam optimiser — the optimiser used for every experiment in the paper."""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam with bias-corrected first and second moment estimates.

    The paper fixes the learning rate at ``1e-4`` for its full-scale runs; the
    scaled-down reproduction typically uses a larger rate (see experiment
    configs) because the synthetic datasets are much smaller.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr=lr, weight_decay=weight_decay)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._scratch = [np.empty_like(p.data) for p in self.parameters]

    def _update(self, index: int, parameter: Parameter, grad: np.ndarray) -> None:
        # Moment estimates and the update direction are computed in place in
        # optimiser-private buffers — no temporaries per parameter per step.
        m, v, scratch = self._m[index], self._v[index], self._scratch[index]
        np.multiply(m, self.beta1, out=m)
        m += (1.0 - self.beta1) * grad
        np.multiply(v, self.beta2, out=v)
        v += (1.0 - self.beta2) * (grad ** 2)
        bias1 = 1.0 - self.beta1 ** self.step_count
        bias2 = 1.0 - self.beta2 ** self.step_count
        np.divide(v, bias2, out=scratch)
        np.sqrt(scratch, out=scratch)
        scratch += self.eps
        np.divide(m, scratch, out=scratch)
        scratch *= self.lr / bias1
        parameter.data = parameter.data - scratch
