"""Adam optimiser — the optimiser used for every experiment in the paper."""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam with bias-corrected first and second moment estimates.

    The paper fixes the learning rate at ``1e-4`` for its full-scale runs; the
    scaled-down reproduction typically uses a larger rate (see experiment
    configs) because the synthetic datasets are much smaller.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr=lr, weight_decay=weight_decay)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def _update(self, index: int, parameter: Parameter, grad: np.ndarray) -> None:
        self._m[index] = self.beta1 * self._m[index] + (1.0 - self.beta1) * grad
        self._v[index] = self.beta2 * self._v[index] + (1.0 - self.beta2) * (grad ** 2)
        m_hat = self._m[index] / (1.0 - self.beta1 ** self.step_count)
        v_hat = self._v[index] / (1.0 - self.beta2 ** self.step_count)
        parameter.data = parameter.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
