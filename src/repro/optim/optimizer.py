"""Optimiser base class with weight decay and gradient clipping support."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from ..nn.module import Parameter

__all__ = ["Optimizer", "clip_grad_norm", "reduce_gradient_shards"]


class Optimizer:
    """Base class holding the parameter list and shared bookkeeping.

    Parameters
    ----------
    parameters:
        Iterable of :class:`repro.nn.Parameter` to update.
    lr:
        Learning rate.
    weight_decay:
        L2 penalty added to gradients before each update (decoupled weight
        decay is not needed for the experiments in the paper).
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float,
        weight_decay: float = 0.0,
    ) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.lr = float(lr)
        self.weight_decay = float(weight_decay)
        self.step_count = 0

    def zero_grad(self) -> None:
        """Clear gradients, recycling the arrays through the engine's pool.

        The optimiser owns the last reference to each step's gradient
        buffers once the update is applied, so this is the one safe place
        to hand them back to :data:`repro.tensor.engine.buffer_pool` for
        the next backward pass (``Tensor.zero_grad`` itself stays pure —
        shard workers call it on tensors whose gradients alias shared
        memory).  ``release`` refuses views and read-only arrays, so
        aliased gradients are dropped, not recycled.
        """
        from ..tensor import engine

        pool = engine.buffer_pool
        for parameter in self.parameters:
            if parameter.grad is not None:
                pool.release(parameter.grad)
            parameter.zero_grad()

    def step(self) -> None:
        """Apply one update; subclasses implement :meth:`_update`."""
        self.step_count += 1
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            self._update(index, parameter, grad)

    def _update(self, index: int, parameter: Parameter, grad: np.ndarray) -> None:
        raise NotImplementedError


def reduce_gradient_shards(
    parameters: Iterable[Parameter],
    shard_gradients,
    present_masks,
) -> None:
    """All-reduce-style fixed-order gradient sum for data-parallel steps.

    ``shard_gradients[s][i]`` is shard ``s``'s gradient array for parameter
    ``i`` and ``present_masks[s][i]`` says whether the shard actually
    produced one.  Contributions are summed **in shard order** (the
    deterministic reduction the sharded executor's equivalence gates rely
    on) into a fresh ``parameter.grad`` buffer; parameters no shard touched
    keep ``grad=None`` so optimisers skip them exactly like a serial
    backward would (Adam's moment buffers must not advance on phantom
    zero gradients).
    """
    for index, parameter in enumerate(parameters):
        accumulated = None
        for shard_index, gradients in enumerate(shard_gradients):
            if not present_masks[shard_index][index]:
                continue
            if accumulated is None:
                accumulated = np.array(gradients[index], copy=True)
            else:
                accumulated += gradients[index]
        parameter.grad = accumulated


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the norm before clipping, mirroring PyTorch behaviour.
    """
    parameters = [p for p in parameters if p.grad is not None]
    if not parameters:
        return 0.0
    # np.dot on the raveled gradient avoids materialising the squares.
    total = float(
        np.sqrt(sum(float(np.dot(p.grad.ravel(), p.grad.ravel())) for p in parameters))
    )
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for parameter in parameters:
            np.multiply(parameter.grad, scale, out=parameter.grad)
    return total
