"""Stochastic gradient descent with optional momentum."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """Vanilla SGD; ``momentum > 0`` enables the classical heavy-ball update."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr=lr, weight_decay=weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def _update(self, index: int, parameter: Parameter, grad: np.ndarray) -> None:
        if self.momentum:
            self._velocity[index] = self.momentum * self._velocity[index] + grad
            grad = self._velocity[index]
        parameter.data = parameter.data - self.lr * grad
