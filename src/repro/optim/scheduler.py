"""Learning-rate schedulers.

Not strictly required to reproduce the paper (the learning rate is fixed),
but provided because any downstream user training on larger synthetic data
will want them, and the ablation benches use step decay for stability.
"""

from __future__ import annotations

from typing import Optional

from .optimizer import Optimizer

__all__ = [
    "LRScheduler",
    "StepLR",
    "ExponentialLR",
    "build_scheduler",
    "SCHEDULER_NAMES",
]


class LRScheduler:
    """Base scheduler; call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and return the new learning rate."""
        self.epoch += 1
        new_lr = self.get_lr()
        self.optimizer.lr = new_lr
        return new_lr

    def get_lr(self) -> float:
        raise NotImplementedError


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(
        self,
        optimizer: Optimizer,
        step_size: int,
        gamma: float = 0.5,
    ) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def get_lr(self) -> float:
        return self.base_lr * (self.gamma ** (self.epoch // self.step_size))


class ExponentialLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95) -> None:
        super().__init__(optimizer)
        self.gamma = float(gamma)

    def get_lr(self) -> float:
        return self.base_lr * (self.gamma ** self.epoch)


#: Scheduler names accepted by :func:`build_scheduler` / ``TrainerConfig``.
SCHEDULER_NAMES = ("step", "exponential")


def build_scheduler(
    name: Optional[str],
    optimizer: Optimizer,
    *,
    step_size: int = 5,
    gamma: float = 0.5,
) -> Optional[LRScheduler]:
    """Config-driven scheduler factory used by the training engine.

    ``None`` (the default trainer configuration: a fixed learning rate, as in
    the paper) returns ``None``; ``"step"`` and ``"exponential"`` build the
    matching scheduler with the given knobs.
    """
    if name is None:
        return None
    if name == "step":
        return StepLR(optimizer, step_size=step_size, gamma=gamma)
    if name == "exponential":
        return ExponentialLR(optimizer, gamma=gamma)
    raise ValueError(
        f"unknown lr scheduler '{name}'; expected one of {SCHEDULER_NAMES} or None",
    )
