"""Optimisers and learning-rate schedulers."""

from .adam import Adam
from .optimizer import Optimizer, clip_grad_norm, reduce_gradient_shards
from .scheduler import SCHEDULER_NAMES, ExponentialLR, LRScheduler, StepLR, build_scheduler
from .sgd import SGD

__all__ = [
    "Optimizer",
    "clip_grad_norm",
    "reduce_gradient_shards",
    "SGD",
    "Adam",
    "LRScheduler",
    "StepLR",
    "ExponentialLR",
    "build_scheduler",
    "SCHEDULER_NAMES",
]
