"""Profiling subsystem: scoped timers and per-op cost accounting.

See :mod:`repro.profiling.profiler` for the full story; the CLI front end is
``python -m repro.cli profile``.
"""

from .profiler import OpStats, Profiler, instrument_ops, profile, profiler

__all__ = ["OpStats", "Profiler", "profiler", "profile", "instrument_ops"]
