"""Scoped timers and per-op counters for the training hot path.

The profiler aggregates three kinds of signal:

* **scopes** — named wall-clock sections (``train/forward`` …) entered via
  :meth:`Profiler.scope`; nestable, aggregated by name;
* **forward op counts** — one increment per autograd graph node, collected
  through the engine's op hook with near-zero overhead;
* **per-op milliseconds** — forward timings via :func:`instrument_ops`
  (which temporarily wraps every public op in :mod:`repro.tensor.ops`) and
  backward timings via the engine's backward hook.

Everything is off by default and adds a single ``None`` check to the hot
path when disabled.  Typical use::

    from repro.profiling import profile, profiler

    with profile(instrument: bool = True):
        ... run training steps ...
    print(profiler.report())
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from ..tensor import engine

__all__ = ["OpStats", "Profiler", "profiler", "profile", "instrument_ops"]


@dataclass
class OpStats:
    """Call count and cumulative seconds for one named operation/scope."""

    calls: int = 0
    seconds: float = 0.0

    def record(self, seconds: float) -> None:
        self.calls += 1
        self.seconds += seconds

    @property
    def ms_per_call(self) -> float:
        return self.seconds * 1000.0 / self.calls if self.calls else 0.0


class Profiler:
    """Aggregating profiler; a process-wide instance lives at ``profiler``."""

    def __init__(self) -> None:
        self.enabled = False
        self.scopes: Dict[str, OpStats] = defaultdict(OpStats)
        self.forward_counts: Dict[str, int] = defaultdict(int)
        self.forward_ops: Dict[str, OpStats] = defaultdict(OpStats)
        self.backward_ops: Dict[str, OpStats] = defaultdict(OpStats)
        #: Free-form structured payloads from subsystems (trace stats, …).
        self.extra_sections: Dict[str, Dict] = {}
        self._pool_baseline = (0, 0)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def enable(self) -> None:
        """Start collecting: counts graph-node creations from here on."""
        self.enabled = True
        engine.set_op_hook(self._record_forward_count)
        engine.set_backward_hook(self._record_backward)

    def disable(self) -> None:
        self.enabled = False
        engine.set_op_hook(None)
        engine.set_backward_hook(None)

    def reset(self) -> None:
        self.scopes.clear()
        self.forward_counts.clear()
        self.forward_ops.clear()
        self.backward_ops.clear()
        self.extra_sections.clear()
        pool = engine.buffer_pool
        self._pool_baseline = (pool.hits, pool.misses)

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def _record_forward_count(self, op: str) -> None:
        self.forward_counts[op] += 1

    def _record_backward(self, op: str, seconds: float) -> None:
        self.backward_ops[op].record(seconds)

    def record_forward_time(self, op: str, seconds: float) -> None:
        self.forward_ops[op].record(seconds)

    def record_section(self, name: str, payload: Dict) -> None:
        """Attach a structured payload (e.g. trace-replay stats) to the report."""
        self.extra_sections[name] = payload

    def buffer_pool_stats(self) -> Dict[str, int]:
        """Gradient-buffer-pool counters since the last :meth:`reset`."""
        pool = engine.buffer_pool
        base_hits, base_misses = self._pool_baseline
        return {
            "hits": pool.hits - base_hits,
            "misses": pool.misses - base_misses,
            "retained": pool.num_buffered(),
        }

    @contextmanager
    def scope(self, name: str) -> Iterator[None]:
        """Time a named section; no-op (single check) when disabled."""
        if not self.enabled:
            yield
            return
        started = time.perf_counter()
        try:
            yield
        finally:
            self.scopes[name].record(time.perf_counter() - started)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Dict]:
        """Machine-readable snapshot of everything collected so far."""

        def stats_dict(table: Dict[str, OpStats]) -> Dict[str, Dict[str, float]]:
            return {
                name: {"calls": stats.calls, "seconds": stats.seconds}
                for name, stats in table.items()
            }

        snapshot = {
            "scopes": stats_dict(self.scopes),
            "forward_counts": {
                name: {"calls": count} for name, count in self.forward_counts.items()
            },
            "forward_ops": stats_dict(self.forward_ops),
            "backward_ops": stats_dict(self.backward_ops),
            "buffer_pool": self.buffer_pool_stats(),
        }
        if self.extra_sections:
            snapshot.update(self.extra_sections)
        return snapshot

    def report(self) -> str:
        """Human-readable tables: scopes, then per-op forward/backward cost."""
        lines = []
        if self.scopes:
            lines.append(f"{'scope':<28}{'calls':>8}{'total ms':>12}{'ms/call':>10}")
            lines.append("-" * 58)
            for name, stats in sorted(
                self.scopes.items(), key=lambda item: -item[1].seconds
            ):
                lines.append(
                    f"{name:<28}{stats.calls:>8}{stats.seconds * 1e3:>12.2f}"
                    f"{stats.ms_per_call:>10.3f}"
                )
        if self.forward_counts or self.forward_ops or self.backward_ops:
            lines.append("")
            lines.append(
                f"{'op':<24}{'nodes':>8}{'fwd ms':>10}{'bwd calls':>11}{'bwd ms':>10}"
            )
            lines.append("-" * 63)
            names = (
                set(self.forward_counts) | set(self.forward_ops) | set(self.backward_ops)
            )

            def total_cost(name: str) -> float:
                forward = self.forward_ops.get(name)
                backward = self.backward_ops.get(name)
                return (forward.seconds if forward else 0.0) + (
                    backward.seconds if backward else 0.0
                )

            for name in sorted(names, key=lambda n: -total_cost(n)):
                forward = self.forward_ops.get(name)
                backward = self.backward_ops.get(name)
                lines.append(
                    f"{name:<24}{self.forward_counts.get(name, 0):>8}"
                    f"{forward.seconds * 1e3 if forward else 0.0:>10.2f}"
                    f"{backward.calls if backward else 0:>11}"
                    f"{backward.seconds * 1e3 if backward else 0.0:>10.2f}"
                )
        pool_stats = self.buffer_pool_stats()
        if any(pool_stats.values()):
            lines.append("")
            lines.append(
                "gradient buffer pool: "
                f"hits={pool_stats['hits']} misses={pool_stats['misses']} "
                f"retained={pool_stats['retained']}"
            )
        for name, payload in self.extra_sections.items():
            lines.append("")
            lines.append(f"{name}: " + _render_payload(payload))
        return "\n".join(lines) if lines else "(profiler collected no data)"


def _render_payload(payload: Dict) -> str:
    """One-line ``key=value`` rendering of a nested stats payload."""
    parts = []
    for key, value in payload.items():
        if isinstance(value, dict):
            inner = " ".join(f"{k}={_format_number(v)}" for k, v in value.items())
            parts.append(f"{key}[{inner}]")
        else:
            parts.append(f"{key}={_format_number(value)}")
    return " ".join(parts)


def _format_number(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


#: Process-wide profiler used by the trainer and the ``repro profile`` CLI.
profiler = Profiler()


@contextmanager
def profile(instrument: bool = False, reset: bool = True) -> Iterator[Profiler]:
    """Enable the global profiler for the duration of the block.

    With ``instrument=True`` every public tensor op is additionally wrapped
    to record forward milliseconds (a few percent overhead — leave it off
    when only phase timings are wanted).
    """
    if reset:
        profiler.reset()
    profiler.enable()
    try:
        if instrument:
            with instrument_ops(profiler):
                yield profiler
        else:
            yield profiler
    finally:
        profiler.disable()


@contextmanager
def instrument_ops(target: Optional[Profiler] = None) -> Iterator[None]:
    """Temporarily wrap tensor/message-passing ops with forward timers.

    Model code resolves ops through module attributes (``ops.linear`` …), so
    swapping the attributes is enough — no call sites change.  ``spmm`` and
    ``segment_mean`` are bound by name at import time in a handful of
    modules; those bindings are patched explicitly.
    """
    import repro.baselines.minet
    import repro.baselines.ptupcdr
    import repro.core.complementing
    import repro.graph
    import repro.graph.kernels

    from ..graph import message_passing
    from ..tensor import ops as ops_module

    target = target or profiler

    def wrap(module, name):
        original = getattr(module, name)

        def timed(*args, __original=original, __name=name, **kwargs):
            started = time.perf_counter()
            try:
                return __original(*args, **kwargs)
            finally:
                target.record_forward_time(__name, time.perf_counter() - started)

        timed.__wrapped__ = original
        return original, timed

    patched = []
    try:
        for name in ops_module.__all__:
            original, timed = wrap(ops_module, name)
            patched.append((ops_module, name, original))
            setattr(ops_module, name, timed)
        spmm_importers = (
            message_passing,
            repro.graph,
            repro.graph.kernels,
            repro.core.complementing,
            repro.baselines.minet,
            repro.baselines.ptupcdr,
        )
        original_spmm, timed_spmm = wrap(message_passing, "spmm")
        for module in spmm_importers:
            if getattr(module, "spmm", None) is original_spmm:
                patched.append((module, "spmm", original_spmm))
                setattr(module, "spmm", timed_spmm)
        original_segment, timed_segment = wrap(message_passing, "segment_mean")
        for module in (message_passing, repro.graph):
            if getattr(module, "segment_mean", None) is original_segment:
                patched.append((module, "segment_mean", original_segment))
                setattr(module, "segment_mean", timed_segment)
        original_attend, timed_attend = wrap(message_passing, "segment_softmax_attend")
        for module in (message_passing, repro.graph, repro.core.complementing):
            if getattr(module, "segment_softmax_attend", None) is original_attend:
                patched.append((module, "segment_softmax_attend", original_attend))
                setattr(module, "segment_softmax_attend", timed_attend)
        yield
    finally:
        for module, name, original in patched:
            setattr(module, name, original)
