"""Fully connected user–user homogeneous graphs with matching-neighbour sampling.

Both node-matching components of NMCDR operate on *fully connected* user–user
graphs (within a domain for intra matching, across domains for inter
matching).  With the paper's ``1/|N|`` Laplacian normalisation, aggregating a
fully connected neighbourhood is equivalent to averaging the (transformed)
features of that neighbourhood, which keeps the computation at ``O(N · D)``
instead of ``O(N² · D)``.

Section III.E.1 additionally samples a fixed number of "matching neighbours"
(512 in the paper) rather than using every user; :class:`MatchingNeighborSampler`
implements that sampling and is what the Fig. 3 bench sweeps.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..tensor import get_rng

__all__ = ["HeadTailPartition", "MatchingNeighborSampler"]


class HeadTailPartition:
    """Head/tail user partition of a domain (Eq. 5).

    A user is a *head* user when their interaction count exceeds ``threshold``
    (following the prose of Section III.E.2), otherwise a *tail* user.
    """

    def __init__(self, user_degrees: np.ndarray, threshold: int) -> None:
        if threshold < 0:
            raise ValueError("head/tail threshold must be non-negative")
        degrees = np.asarray(user_degrees, dtype=np.int64)
        self.threshold = int(threshold)
        self.degrees = degrees
        self.head_users = np.where(degrees > threshold)[0].astype(np.int64)
        self.tail_users = np.where(degrees <= threshold)[0].astype(np.int64)

    @property
    def num_users(self) -> int:
        return int(self.degrees.shape[0])

    def is_head(self, user: int) -> bool:
        return bool(self.degrees[user] > self.threshold)

    def summary(self) -> dict:
        """Counts used by the Fig. 4 bench and dataset statistics."""
        return {
            "threshold": self.threshold,
            "num_head": int(self.head_users.size),
            "num_tail": int(self.tail_users.size),
            "head_fraction": float(self.head_users.size) / max(self.num_users, 1),
        }


class MatchingNeighborSampler:
    """Sample the matching neighbourhood used by the fully connected graphs.

    Parameters
    ----------
    max_neighbors:
        Upper bound on the number of users sampled from each candidate pool
        (the paper uses 512; scaled-down experiments use less).  ``None`` or a
        value larger than the pool keeps the whole pool.
    rng:
        Optional generator for reproducible sampling.
    """

    def __init__(
        self,
        max_neighbors: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if max_neighbors is not None and max_neighbors <= 0:
            raise ValueError("max_neighbors must be positive or None")
        self.max_neighbors = max_neighbors
        self._rng = rng

    def sample(self, candidates: np.ndarray) -> np.ndarray:
        """Return a subset of ``candidates`` of size at most ``max_neighbors``."""
        candidates = np.asarray(candidates, dtype=np.int64)
        if self.max_neighbors is None or candidates.size <= self.max_neighbors:
            return candidates
        chosen = get_rng(
            self._rng,
        ).choice(candidates, size=self.max_neighbors, replace=False)
        return np.sort(chosen)

    def sample_partition(
        self,
        partition: HeadTailPartition,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample the head and tail pools of an intra-domain matching graph."""
        return self.sample(partition.head_users), self.sample(partition.tail_users)
