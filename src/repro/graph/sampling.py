"""Batched k-hop subgraph sampling over bipartite interaction graphs.

Mini-batch GNN training only reads the batch rows of the final
representations, yet a full-graph forward propagates over every user and item
of the domain.  This module extracts the *induced* k-hop bipartite subgraph
around a batch (the GraphSAGE-style neighbour-sampling recipe), remaps the
global node ids to a compact local id space and materialises an
:class:`~repro.graph.InteractionGraph` over the local ids — whose memoised
normalised operators and CSR edge templates then serve every forward pass on
that subgraph.

Exactness contract.  Message passing over the induced subgraph reproduces the
full-graph representations *at the seed nodes* whenever

* ``num_hops >= L`` for an ``L``-layer encoder whose normalisation only
  reads the *near* endpoint's degree (the paper's vanilla kernel): a node at
  distance ``j`` from a seed only needs its own ``L - j``-layer
  representation, which depends on nodes up to distance ``L``;
* ``num_hops >= L + 1`` when the kernel's normalisation also reads the *far*
  endpoint's neighbourhood (GCN's ``D^-1/2 A D^-1/2`` degrees, GAT's
  per-node attention softmax) — frontier nodes at distance exactly
  ``num_hops`` have truncated neighbourhoods, so one extra hop keeps every
  degree/softmax a seed output depends on exact; and
* no ``fanout`` cap is set (the induced subgraph then contains the complete
  neighbourhood of every node at distance ``< num_hops``).

Consumers that read non-seed rows (e.g. NMCDR's node complementing reads the
encoder outputs of the seeds' neighbour items) must budget extra hops for
them; :meth:`repro.core.NMCDR.configure_subgraph_sampling` resolves the
correct depth per configuration.

With a ``fanout`` cap high-degree frontier nodes pull in at most ``fanout``
neighbours per hop, which bounds the subgraph size at the cost of truncated
neighbourhoods (the standard accuracy/cost dial of neighbour sampling).
Capped draws use a *signature-stable per-node reservoir* (each node's kept
neighbour subset is a pure hash of the node, independent of the frontier and
the seed set), so fanout expansion is deterministic — a cached subgraph and a
freshly sampled one for the same key are identical by construction — **and**
distributes over seed unions, which lets the incremental plan schedule delta-
expand batches under a fanout cap instead of falling back to full per-step
expansion.

:class:`SubgraphCache` memoises :class:`DomainSubgraph` objects keyed by the
seed sets and sampling settings: repeated batch signatures (common with small
catalogues, curriculum replays or per-epoch re-shuffles that happen to cover
the same users) skip extraction entirely and reuse the induced graph together
with all of its cached sparse operators.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

from .bipartite import InteractionGraph

__all__ = [
    "DomainSubgraph",
    "SubgraphCache",
    "sample_khop_nodes",
    "induced_subgraph",
    "induced_subgraph_scipy",
]


def _as_node_ids(ids, size: int, label: str) -> np.ndarray:
    """Validate and canonicalise (sort + dedup) a global node id array."""
    ids = np.asarray(ids, dtype=np.int64).ravel()
    if ids.size and (ids.min() < 0 or ids.max() >= size):
        raise ValueError(f"{label} id out of range [0, {size})")
    return np.unique(ids)


def _mix64(values: np.ndarray) -> np.ndarray:
    """SplitMix64 finaliser: a stateless, vectorised uint64 bit mixer."""
    mixed = values.astype(np.uint64, copy=True)
    mixed ^= mixed >> np.uint64(30)
    mixed *= np.uint64(0xBF58476D1CE4E5B9)
    mixed ^= mixed >> np.uint64(27)
    mixed *= np.uint64(0x94D049BB133111EB)
    mixed ^= mixed >> np.uint64(31)
    return mixed


def _gather_neighbors(
    indptr: np.ndarray,
    indices: np.ndarray,
    frontier: np.ndarray,
    fanout: Optional[int],
    side: int,
) -> np.ndarray:
    """All (or up to ``fanout`` per node) neighbours of the frontier nodes.

    The capped draw is a **signature-stable per-node reservoir**: every edge
    gets a pseudo-random key mixed from its owning node's id and its rank
    within the node's (canonically sorted) adjacency row, and each node keeps
    its ``fanout`` smallest-keyed edges.  A node's kept subset is therefore a
    pure function of the node itself — independent of which other nodes share
    the frontier, of the hop at which it is reached and of the seed set that
    reached it.  That is exactly the property that makes capped k-hop
    expansion distribute over seed unions (``khop(S ∪ B) = khop(S) ∪
    khop(B)``, the delta-expansion contract of
    :class:`repro.core.plan_schedule.PlanSchedule`), which whole-frontier rng
    draws — the pre-reservoir implementation — could not provide.  ``side``
    decorrelates the user→item and item→user draws of nodes sharing an id.
    """
    if frontier.size == 0:
        return np.empty(0, dtype=np.int64)
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Contiguous gather of every CSR slice without a Python loop.
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    flat = np.repeat(starts, counts) + offsets
    if fanout is None or not (counts > fanout).any():
        return indices[flat].astype(np.int64)

    # Per-node sampling without replacement, fully vectorised: order edges by
    # (owning node, per-node-stable key) and keep each node's first
    # ``fanout`` — a per-segment pseudo-random subset.  Keeping the *k*
    # smallest keys also nests subsets across fanout values.
    segments = np.repeat(np.arange(frontier.size), counts)
    owner_ids = np.repeat(frontier.astype(np.uint64), counts)
    keys = _mix64(
        owner_ids * np.uint64(0x9E3779B97F4A7C15)
        + offsets.astype(np.uint64)
        + np.uint64(side) * np.uint64(0xD1B54A32D192ED03)
    )
    order = np.lexsort((keys, segments))
    segment_starts = np.repeat(np.cumsum(counts) - counts, counts)
    ranks = np.arange(total) - segment_starts
    return indices[flat[order[ranks < fanout]]].astype(np.int64)


def _signature(
    seed_users: np.ndarray,
    seed_items: np.ndarray,
    num_hops: int,
    fanout: Optional[int],
) -> bytes:
    """Stable digest of the sampling inputs (the subgraph-cache key)."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(np.int64(num_hops).tobytes())
    digest.update(np.int64(-1 if fanout is None else fanout).tobytes())
    digest.update(np.int64(seed_users.size).tobytes())
    digest.update(seed_users.tobytes())
    digest.update(seed_items.tobytes())
    return digest.digest()


def sample_khop_nodes(
    graph: InteractionGraph,
    seed_users,
    seed_items,
    num_hops: int = 1,
    fanout: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Node sets of the k-hop neighbourhood around the seed users/items.

    One hop expands the user frontier to its items and the item frontier to
    its users simultaneously; ``fanout`` caps how many neighbours a single
    frontier node may contribute per hop via the signature-stable per-node
    reservoir of :func:`_gather_neighbors`, so the capped expansion is a
    deterministic, union-decomposable function of the seeds.  Returns sorted
    global ``(user_ids, item_ids)``.  Isolated seed nodes are kept (they
    simply add no neighbours).
    """
    if num_hops < 1:
        raise ValueError("num_hops must be >= 1")
    if fanout is not None and fanout < 1:
        raise ValueError("fanout must be positive or None")
    seed_users = _as_node_ids(seed_users, graph.num_users, "seed user")
    seed_items = _as_node_ids(seed_items, graph.num_items, "seed item")

    csr = graph.adjacency()
    csc = graph.adjacency_item_major()
    user_mask = np.zeros(graph.num_users, dtype=bool)
    item_mask = np.zeros(graph.num_items, dtype=bool)
    user_mask[seed_users] = True
    item_mask[seed_items] = True
    user_frontier, item_frontier = seed_users, seed_items

    for _ in range(num_hops):
        next_items = _gather_neighbors(csr.indptr, csr.indices, user_frontier, fanout, side=0)
        next_users = _gather_neighbors(csc.indptr, csc.indices, item_frontier, fanout, side=1)
        next_items = np.unique(next_items[~item_mask[next_items]]) if next_items.size else next_items
        next_users = np.unique(next_users[~user_mask[next_users]]) if next_users.size else next_users
        if next_items.size == 0 and next_users.size == 0:
            break
        item_mask[next_items] = True
        user_mask[next_users] = True
        user_frontier, item_frontier = next_users, next_items

    return np.where(user_mask)[0].astype(np.int64), np.where(item_mask)[0].astype(np.int64)


class DomainSubgraph:
    """Induced bipartite subgraph with a global→local id remapping.

    ``user_ids`` / ``item_ids`` are the sorted global ids of the included
    nodes; ``graph`` is the induced :class:`InteractionGraph` over local ids
    ``0 .. len(ids) - 1`` (row ``i`` of the local graph is global node
    ``user_ids[i]``).  The remap uses binary search over the sorted id
    arrays, so no dense parent-sized lookup table is materialised.
    """

    #: Bound on the identity-keyed localisation memo (see ``_localize``).
    _MEMO_LIMIT = 64

    def __init__(
        self,
        user_ids: np.ndarray,
        item_ids: np.ndarray,
        graph: Optional[InteractionGraph],
    ) -> None:
        self.user_ids = user_ids
        self.item_ids = item_ids
        self.graph = graph
        # Identity-keyed memo for the global→local remaps: a persistent plan
        # schedule re-localises the *same* pool/overlap arrays against the
        # same cached subgraph every step, so repeated lookups skip the
        # binary search.  Values hold the key array itself, which both makes
        # the ``id`` key collision-free (the object cannot be freed and its
        # id recycled while referenced) and keeps the memo bounded.
        self._local_memo: dict = {}

    @property
    def num_users(self) -> int:
        return int(self.user_ids.size)

    @property
    def num_items(self) -> int:
        return int(self.item_ids.size)

    def _localize(self, table: np.ndarray, global_ids, label: str) -> np.ndarray:
        global_ids = np.asarray(global_ids, dtype=np.int64)
        if table.size == 0:
            if global_ids.size:
                raise KeyError(f"{label} ids requested from an empty subgraph partition")
            return global_ids
        local = np.searchsorted(table, global_ids)
        valid = (local < table.size) & (table[np.minimum(local, table.size - 1)] == global_ids)
        if global_ids.size and not valid.all():
            missing = global_ids[~valid][:5]
            raise KeyError(f"{label} ids {missing.tolist()} are not part of this subgraph")
        return local.astype(np.int64)

    def _memoized(self, kind: str, global_ids, compute) -> np.ndarray:
        if not isinstance(global_ids, np.ndarray):
            return compute(global_ids)
        key = (kind, id(global_ids))
        hit = self._local_memo.get(key)
        if hit is not None and hit[0] is global_ids:
            return hit[1]
        result = compute(global_ids)
        if len(self._local_memo) >= self._MEMO_LIMIT:
            self._local_memo.clear()
        self._local_memo[key] = (global_ids, result)
        return result

    def local_users(self, global_ids) -> np.ndarray:
        """Map global user ids to local rows (raises if any id is missing)."""
        return self._memoized(
            "user", global_ids, lambda ids: self._localize(self.user_ids, ids, "user")
        )

    def local_items(self, global_ids) -> np.ndarray:
        """Map global item ids to local rows (raises if any id is missing)."""
        return self._memoized(
            "item", global_ids, lambda ids: self._localize(self.item_ids, ids, "item")
        )

    def contains_users(self, global_ids) -> np.ndarray:
        """Boolean membership mask for global user ids."""
        return self._memoized("contains", global_ids, self._contains_users)

    def _contains_users(self, global_ids) -> np.ndarray:
        global_ids = np.asarray(global_ids, dtype=np.int64)
        if self.user_ids.size == 0:
            return np.zeros(global_ids.shape, dtype=bool)
        pos = np.searchsorted(self.user_ids, global_ids)
        return (pos < self.user_ids.size) & (
            self.user_ids[np.minimum(pos, self.user_ids.size - 1)] == global_ids
        )

    def __repr__(self) -> str:
        edges = self.graph.num_edges if self.graph is not None else 0
        return f"DomainSubgraph(users={self.num_users}, items={self.num_items}, edges={edges})"


def induced_subgraph(
    graph: InteractionGraph, user_ids: np.ndarray, item_ids: np.ndarray
) -> DomainSubgraph:
    """Materialise the induced subgraph over the given (sorted global) node sets.

    The edge set is *every* observed edge between the included users and
    items.  When the user set is non-empty but no item was reached (all
    included users are isolated), a single dummy item column is padded in so
    the local :class:`InteractionGraph` remains constructible — the padded
    column is all-zero by construction (any edge would have pulled the item
    into the node set), so it influences nothing.

    The extraction is CSR-native: the included users' row slices are gathered
    straight off the parent adjacency, filtered by item membership with one
    binary search and assembled into the local CSR directly — no scipy
    fancy-indexing pass and no COO round-trip (the PR-2 path is kept as
    :func:`induced_subgraph_scipy` for reference and regression benches).
    Because the parent CSR is canonical (sorted, duplicate-free) and the
    remap is monotone, the local structure is canonical by construction.
    """
    user_ids = np.asarray(user_ids, dtype=np.int64)
    item_ids = np.asarray(item_ids, dtype=np.int64)
    if user_ids.size == 0:
        return DomainSubgraph(user_ids, item_ids, None)
    if item_ids.size == 0:
        item_ids = np.zeros(1, dtype=np.int64)

    csr = graph.adjacency()
    starts = csr.indptr[user_ids]
    counts = csr.indptr[user_ids + 1] - starts
    total = int(counts.sum())
    if total == 0:
        local = InteractionGraph.from_csr(
            user_ids.size,
            item_ids.size,
            np.zeros(user_ids.size + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
        return DomainSubgraph(user_ids, item_ids, local)

    if total * 8 >= graph.num_edges:
        # Dense extraction (exact-hop subgraphs cover most of the graph):
        # one membership mask over the parent's user-major edge list and two
        # dense rank lookups.  The parent edge order is user-major with
        # sorted columns, and the kept subsequence inherits it, so the local
        # structure is canonical without any sort.
        item_rank = np.full(graph.num_items, -1, dtype=np.int64)
        item_rank[item_ids] = np.arange(item_ids.size, dtype=np.int64)
        user_member = np.zeros(graph.num_users, dtype=bool)
        user_member[user_ids] = True
        keep = user_member[graph.user_indices] & (item_rank[graph.item_indices] >= 0)
        kept_users = graph.user_indices[keep]
        local_items = item_rank[graph.item_indices[keep]]
        kept_per_user = np.bincount(kept_users, minlength=graph.num_users)[user_ids]
    else:
        # Sparse extraction (fanout-capped subgraphs): contiguous gather of
        # the included users' CSR slices, then an item-membership filter via
        # binary search — O(edges of the included users), not O(parent).
        offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        flat = np.repeat(starts, counts) + offsets
        columns = csr.indices[flat]
        # The searchsorted position doubles as the *local* item id
        # (item_ids is sorted and unique).
        position = np.searchsorted(item_ids, columns)
        keep = (position < item_ids.size) & (
            item_ids[np.minimum(position, item_ids.size - 1)] == columns
        )
        rows = np.repeat(np.arange(user_ids.size, dtype=np.int64), counts)
        local_items = position[keep].astype(np.int64)
        kept_per_user = np.bincount(rows[keep], minlength=user_ids.size)

    indptr = np.concatenate(([0], np.cumsum(kept_per_user))).astype(np.int64)
    local = InteractionGraph.from_csr(user_ids.size, item_ids.size, indptr, local_items)
    return DomainSubgraph(user_ids, item_ids, local)


def induced_subgraph_scipy(
    graph: InteractionGraph, user_ids: np.ndarray, item_ids: np.ndarray
) -> DomainSubgraph:
    """PR-2 reference extraction via scipy fancy indexing (slow path).

    Kept for the equivalence tests and as the baseline of the plan-build
    regression bench; production code uses :func:`induced_subgraph`.
    """
    user_ids = np.asarray(user_ids, dtype=np.int64)
    item_ids = np.asarray(item_ids, dtype=np.int64)
    if user_ids.size == 0:
        return DomainSubgraph(user_ids, item_ids, None)
    if item_ids.size == 0:
        item_ids = np.zeros(1, dtype=np.int64)
    sub = graph.adjacency()[user_ids][:, item_ids].tocoo()
    local = InteractionGraph(
        user_ids.size, item_ids.size, sub.row.astype(np.int64), sub.col.astype(np.int64)
    )
    return DomainSubgraph(user_ids, item_ids, local)


class SubgraphCache:
    """LRU cache of :class:`DomainSubgraph` objects keyed by batch signature.

    The key covers the canonical seed node sets and the sampling settings;
    two batches that touch the same unique users and items (in any order,
    with any multiplicity) therefore share one cached subgraph — including
    the induced graph's own memoised sparse operators from PR 1.
    """

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[bytes, DomainSubgraph]" = OrderedDict()
        #: Secondary index keyed by the *expanded* node sets: two different
        #: seed sets whose k-hop neighbourhoods coincide share one induced
        #: subgraph (and all of its memoised operators).
        self._node_entries: "OrderedDict[bytes, DomainSubgraph]" = OrderedDict()
        self._node_identity: dict = {}
        self.hits = 0
        self.misses = 0
        self.node_hits = 0

    def _from_nodes(
        self,
        graph: InteractionGraph,
        user_ids: np.ndarray,
        item_ids: np.ndarray,
        num_hops: int,
        fanout: Optional[int],
    ) -> DomainSubgraph:
        """Build-or-reuse an induced subgraph keyed by its node sets."""
        # Identity fast path: the plan schedule hands back the *same* node
        # arrays whenever a step's expansion collapses onto the static
        # closure — skip even the content hash then.  The stored entry keeps
        # the key arrays alive, so the ids cannot be recycled.
        identity_key = (id(user_ids), id(item_ids), num_hops, fanout)
        cached = self._node_identity.get(identity_key)
        if cached is not None and cached[0] is user_ids and cached[1] is item_ids:
            self.node_hits += 1
            return cached[2]
        node_key = b"nodes:" + _signature(user_ids, item_ids, num_hops, fanout)
        entry = self._node_entries.get(node_key)
        if entry is not None:
            self.node_hits += 1
            self._node_entries.move_to_end(node_key)
        else:
            entry = induced_subgraph(graph, user_ids, item_ids)
            self._node_entries[node_key] = entry
            if len(self._node_entries) > self.max_entries:
                self._node_entries.popitem(last=False)
        if len(self._node_identity) >= self.max_entries:
            self._node_identity.clear()
        self._node_identity[identity_key] = (user_ids, item_ids, entry)
        return entry

    def get_by_nodes(
        self,
        graph: InteractionGraph,
        user_ids: np.ndarray,
        item_ids: np.ndarray,
        num_hops: int = 1,
        fanout: Optional[int] = None,
    ) -> DomainSubgraph:
        """Cached induced subgraph over *pre-expanded*, sorted-unique node sets.

        The incremental plan schedule expands seed deltas itself; this entry
        point skips seed canonicalisation and k-hop sampling entirely.  The
        induced subgraph is a pure function of the node sets, so consecutive
        steps whose expansions coincide (e.g. deterministic pools whose
        closure already covers the batch neighbourhood) reuse one subgraph
        and its operator caches.
        """
        return self._from_nodes(graph, user_ids, item_ids, num_hops, fanout)

    def get(
        self,
        graph: InteractionGraph,
        seed_users,
        seed_items,
        num_hops: int = 1,
        fanout: Optional[int] = None,
    ) -> DomainSubgraph:
        """Return the (possibly cached) induced k-hop subgraph for the seeds.

        Callers that have already expanded the node sets themselves (the
        incremental plan schedule) should use :meth:`get_by_nodes` instead.
        """
        seed_users = _as_node_ids(seed_users, graph.num_users, "seed user")
        seed_items = _as_node_ids(seed_items, graph.num_items, "seed item")
        key = _signature(seed_users, seed_items, num_hops, fanout)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.misses += 1
        user_ids, item_ids = sample_khop_nodes(
            graph, seed_users, seed_items, num_hops=num_hops, fanout=fanout
        )
        entry = self._from_nodes(graph, user_ids, item_ids, num_hops, fanout)
        self._entries[key] = entry
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return entry

    def clear(self) -> None:
        self._entries.clear()
        self._node_entries.clear()
        self.hits = 0
        self.misses = 0
        self.node_hits = 0

    def __len__(self) -> int:
        return len(self._entries)
