"""Graph substrate: interaction graphs, GNN kernels, neighbour/subgraph sampling."""

from .bipartite import InteractionGraph
from .homogeneous import HeadTailPartition, MatchingNeighborSampler
from .kernels import GATConv, GCNConv, VanillaGNNConv, kernel_by_name
from .message_passing import segment_mean, segment_softmax_attend, spmm
from .sampling import DomainSubgraph, SubgraphCache, induced_subgraph, sample_khop_nodes

__all__ = [
    "InteractionGraph",
    "HeadTailPartition",
    "MatchingNeighborSampler",
    "VanillaGNNConv",
    "GCNConv",
    "GATConv",
    "kernel_by_name",
    "spmm",
    "segment_mean",
    "segment_softmax_attend",
    "DomainSubgraph",
    "SubgraphCache",
    "induced_subgraph",
    "sample_khop_nodes",
]
