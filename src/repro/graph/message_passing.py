"""Sparse message-passing primitives bridging scipy sparse matrices and autograd.

The adjacency structure of the interaction graph is fixed data (no gradient is
required through it), so propagation reduces to multiplying a constant sparse
operator by a dense differentiable feature matrix.  ``spmm`` wires that product
into the autograd graph with the correct transpose rule for the backward pass.
"""

from __future__ import annotations


import numpy as np
import scipy.sparse as sp

from ..tensor import Tensor, as_tensor
from ..tensor.ops import _scatter_add_2d

__all__ = ["spmm", "segment_mean", "segment_softmax_attend"]


def spmm(matrix: sp.spmatrix, features: Tensor) -> Tensor:
    """Differentiable ``sparse @ dense`` product.

    Parameters
    ----------
    matrix:
        Constant scipy sparse operator of shape ``(M, N)``.
    features:
        Dense :class:`Tensor` of shape ``(N, D)`` requiring gradients.
    """
    features = as_tensor(features)
    matrix = matrix.tocsr()
    if matrix.shape[1] != features.shape[0]:
        raise ValueError(
            f"spmm shape mismatch: operator {matrix.shape} vs features {features.shape}"
        )
    out_data = matrix @ features.data

    def backward(grad: np.ndarray) -> None:
        features._accumulate(matrix.T @ np.asarray(grad))

    return Tensor._build(out_data, (features,), backward, "spmm")


def segment_mean(features: Tensor, segment_indices: np.ndarray, num_segments: int) -> Tensor:
    """Mean of feature rows grouped by ``segment_indices``.

    Used to aggregate messages per destination node when an explicit sparse
    operator is inconvenient (e.g. attention-weighted neighbourhoods).
    Rows belonging to empty segments are zero.
    """
    segment_indices = np.asarray(segment_indices, dtype=np.int64)
    if segment_indices.shape[0] != features.shape[0]:
        raise ValueError("segment_indices must have one entry per feature row")
    counts = np.bincount(segment_indices, minlength=num_segments).astype(np.float64)
    weights = np.divide(1.0, counts, out=np.zeros_like(counts), where=counts > 0)
    operator = sp.coo_matrix(
        (
            weights[segment_indices],
            (segment_indices, np.arange(segment_indices.shape[0])),
        ),
        shape=(num_segments, segment_indices.shape[0]),
    ).tocsr()
    return spmm(operator, features)


def segment_softmax_attend(
    queries: Tensor,
    keys: Tensor,
    values: Tensor,
    edge_queries: np.ndarray,
    edge_keys: np.ndarray,
    num_segments: int,
    eps: float = 1e-12,
) -> Tensor:
    """Fused per-segment softmax attention over an edge list (Eq. 18–19).

    For every edge ``e = (q, k)`` the score is ``queries[q] · keys[k]``; the
    scores are softmax-normalised per query segment (max-shifted, the shift
    treated as a constant) and used to weight ``values[k]`` rows, which are
    summed per query:

        out[q] = sum_e att_e * values[edge_keys[e]]

    The unfused formulation needs ~a dozen graph nodes with edge-sized
    intermediates (three ``(E, D)`` gathers, exp/div chains and two sparse
    products); this kernel is one node with a hand-derived backward, which
    is where the node-complementing module spends most of its time.
    """
    queries, keys, values = as_tensor(queries), as_tensor(keys), as_tensor(values)
    edge_queries = np.asarray(edge_queries, dtype=np.int64)
    edge_keys = np.asarray(edge_keys, dtype=np.int64)
    if edge_queries.shape != edge_keys.shape or edge_queries.ndim != 1:
        raise ValueError("edge_queries and edge_keys must be equal-length 1-D arrays")

    query_rows = queries.data[edge_queries]
    key_rows = keys.data[edge_keys]
    scores = np.einsum("ed,ed->e", query_rows, key_rows)

    max_per_segment = np.full(num_segments, -np.inf)
    np.maximum.at(max_per_segment, edge_queries, scores)
    max_per_segment[~np.isfinite(max_per_segment)] = 0.0
    shifted = scores - max_per_segment[edge_queries]
    clip_mask = (shifted >= -60.0) & (shifted <= 60.0)
    exp_scores = np.exp(np.clip(shifted, -60.0, 60.0))

    denominator = np.bincount(edge_queries, weights=exp_scores, minlength=num_segments)
    inv_denominator = 1.0 / (denominator[edge_queries] + eps)
    attention = exp_scores * inv_denominator

    value_rows = values.data[edge_keys]
    out_data = np.zeros((num_segments, values.data.shape[1]), dtype=values.data.dtype)
    _scatter_add_2d(out_data, edge_queries, attention[:, None] * value_rows)

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        grad_rows = grad[edge_queries]
        if values.requires_grad:
            buffer = values._ensure_grad_buffer()
            _scatter_add_2d(buffer, edge_keys, attention[:, None] * grad_rows)
        if not (queries.requires_grad or keys.requires_grad):
            return
        # Softmax backward with the ``+ eps`` denominator kept exact:
        # d att_e / d z_e' = δ_ee' / (den + eps) - z_e / (den + eps)^2.
        d_attention = np.einsum("ed,ed->e", value_rows, grad_rows)
        weighted = np.bincount(
            edge_queries, weights=d_attention * exp_scores, minlength=num_segments
        )
        d_exp = (d_attention - weighted[edge_queries] * inv_denominator) * inv_denominator
        d_scores = d_exp * exp_scores * clip_mask
        if queries.requires_grad:
            buffer = queries._ensure_grad_buffer()
            _scatter_add_2d(buffer, edge_queries, d_scores[:, None] * key_rows)
        if keys.requires_grad:
            buffer = keys._ensure_grad_buffer()
            _scatter_add_2d(buffer, edge_keys, d_scores[:, None] * query_rows)

    return Tensor._build(out_data, (queries, keys, values), backward, "segment_softmax_attend")
