"""Sparse message-passing primitives bridging scipy sparse matrices and autograd.

The adjacency structure of the interaction graph is fixed data (no gradient is
required through it), so propagation reduces to multiplying a constant sparse
operator by a dense differentiable feature matrix.  ``spmm`` wires that product
into the autograd graph with the correct transpose rule for the backward pass.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..tensor import Tensor, as_tensor

__all__ = ["spmm", "segment_mean"]


def spmm(matrix: sp.spmatrix, features: Tensor) -> Tensor:
    """Differentiable ``sparse @ dense`` product.

    Parameters
    ----------
    matrix:
        Constant scipy sparse operator of shape ``(M, N)``.
    features:
        Dense :class:`Tensor` of shape ``(N, D)`` requiring gradients.
    """
    features = as_tensor(features)
    matrix = matrix.tocsr()
    if matrix.shape[1] != features.shape[0]:
        raise ValueError(
            f"spmm shape mismatch: operator {matrix.shape} vs features {features.shape}"
        )
    out_data = matrix @ features.data

    def backward(grad: np.ndarray) -> None:
        features._accumulate(matrix.T @ np.asarray(grad))

    return Tensor._build(out_data, (features,), backward, "spmm")


def segment_mean(features: Tensor, segment_indices: np.ndarray, num_segments: int) -> Tensor:
    """Mean of feature rows grouped by ``segment_indices``.

    Used to aggregate messages per destination node when an explicit sparse
    operator is inconvenient (e.g. attention-weighted neighbourhoods).
    Rows belonging to empty segments are zero.
    """
    segment_indices = np.asarray(segment_indices, dtype=np.int64)
    if segment_indices.shape[0] != features.shape[0]:
        raise ValueError("segment_indices must have one entry per feature row")
    counts = np.bincount(segment_indices, minlength=num_segments).astype(np.float64)
    weights = np.divide(1.0, counts, out=np.zeros_like(counts), where=counts > 0)
    operator = sp.coo_matrix(
        (
            weights[segment_indices],
            (segment_indices, np.arange(segment_indices.shape[0])),
        ),
        shape=(num_segments, segment_indices.shape[0]),
    ).tocsr()
    return spmm(operator, features)
