"""Graph neural network kernels over the bipartite interaction graph.

The paper instantiates the heterogeneous graph encoder with a "vanilla GNN"
(Eq. 2–4) and notes that the message-mapping function "can be replaced with
any proposed graph neural network kernels such as GCN and GAT".  All three are
implemented here behind a common interface so the encoder (and the ablation
benches) can swap them.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..nn import Linear, Module
from ..tensor import Tensor, ops
from .bipartite import InteractionGraph
from .message_passing import spmm

__all__ = ["VanillaGNNConv", "GCNConv", "GATConv", "kernel_by_name"]


class VanillaGNNConv(Module):
    """The paper's default kernel (Eq. 2–4).

    User update: ``ReLU(u W + (1/|N_u|) * sum_j v_j W + b)`` — a shared
    transformation applied to the self message and the aggregated neighbour
    messages, followed by ReLU.  The item update mirrors it.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_dim = int(in_dim)
        self.out_dim = int(out_dim)
        self.user_transform = Linear(in_dim, out_dim, rng=rng)
        self.item_transform = Linear(in_dim, out_dim, rng=rng)

    def forward(
        self,
        graph: InteractionGraph,
        user_features: Tensor,
        item_features: Tensor,
    ) -> Tuple[Tensor, Tensor]:
        user_agg = graph.user_aggregation_matrix()
        item_agg = graph.item_aggregation_matrix()
        # Eq. 3: message = (v_j W + b) / |N_u| ; Eq. 4: add self message u W, then
        # ReLU.  Each transform is applied once and shared between the self
        # message and the neighbour aggregation of the opposite partition.
        user_hidden = self.user_transform(user_features)
        item_hidden = self.item_transform(item_features)
        user_out = ops.relu(user_hidden + spmm(user_agg, item_hidden))
        item_out = ops.relu(item_hidden + spmm(item_agg, user_hidden))
        return user_out, item_out


class GCNConv(Module):
    """GCN-style kernel with symmetric ``D^{-1/2} A D^{-1/2}`` normalisation."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_dim = int(in_dim)
        self.out_dim = int(out_dim)
        self.user_transform = Linear(in_dim, out_dim, rng=rng)
        self.item_transform = Linear(in_dim, out_dim, rng=rng)

    def forward(
        self,
        graph: InteractionGraph,
        user_features: Tensor,
        item_features: Tensor,
    ) -> Tuple[Tensor, Tensor]:
        norm = graph.symmetric_normalized_adjacency()
        norm_t = graph.symmetric_normalized_adjacency_transpose()
        user_hidden = self.user_transform(user_features)
        item_hidden = self.item_transform(item_features)
        user_out = ops.relu(user_hidden + spmm(norm, item_hidden))
        item_out = ops.relu(item_hidden + spmm(norm_t, user_hidden))
        return user_out, item_out


class GATConv(Module):
    """Single-head graph attention kernel over the bipartite graph.

    Attention logits are computed per observed edge from the transformed user
    and item features, normalised per user (resp. item) with a softmax, and
    used to weight neighbour messages.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_dim = int(in_dim)
        self.out_dim = int(out_dim)
        self.user_transform = Linear(in_dim, out_dim, rng=rng)
        self.item_transform = Linear(in_dim, out_dim, rng=rng)
        self.attention_user = Linear(out_dim, 1, rng=rng)
        self.attention_item = Linear(out_dim, 1, rng=rng)

    def _edge_softmax(
        self,
        logits: np.ndarray,
        segment: np.ndarray,
        num_segments: int,
    ) -> np.ndarray:
        """Numerically stable softmax of edge logits grouped by ``segment``."""
        maxima = np.full(num_segments, -np.inf)
        np.maximum.at(maxima, segment, logits)
        maxima[~np.isfinite(maxima)] = 0.0
        shifted = np.exp(logits - maxima[segment])
        denom = np.zeros(num_segments)
        np.add.at(denom, segment, shifted)
        denom[denom == 0.0] = 1.0
        return shifted / denom[segment]

    def forward(
        self,
        graph: InteractionGraph,
        user_features: Tensor,
        item_features: Tensor,
    ) -> Tuple[Tensor, Tensor]:
        users = graph.user_indices
        items = graph.item_indices
        user_hidden = self.user_transform(user_features)
        item_hidden = self.item_transform(item_features)

        # Edge attention scores (treated as constants for the softmax weights;
        # the value pathway remains fully differentiable).
        edge_user_score = self.attention_user(user_hidden).data[users, 0]
        edge_item_score = self.attention_item(item_hidden).data[items, 0]
        edge_logits = np.tanh(edge_user_score + edge_item_score)

        user_weights = self._edge_softmax(edge_logits, users, graph.num_users)
        item_weights = self._edge_softmax(edge_logits, items, graph.num_items)

        # The sparsity pattern is the graph's own; only the attention values
        # change per step, so the cached CSR templates avoid a COO→CSR
        # conversion (and its index bookkeeping) on every forward pass.
        user_operator = graph.user_edge_operator(user_weights)
        item_operator = graph.item_edge_operator(item_weights)

        user_out = ops.relu(user_hidden + spmm(user_operator, item_hidden))
        item_out = ops.relu(item_hidden + spmm(item_operator, user_hidden))
        return user_out, item_out


_KERNELS = {
    "vanilla": VanillaGNNConv,
    "gcn": GCNConv,
    "gat": GATConv,
}


def kernel_by_name(
    name: str,
    in_dim: int,
    out_dim: int,
    rng: Optional[np.random.Generator] = None,
) -> Module:
    """Instantiate a GNN kernel by its lowercase name."""
    key = name.lower()
    if key not in _KERNELS:
        raise KeyError(f"unknown GNN kernel '{name}'; known: {sorted(_KERNELS)}")
    return _KERNELS[key](in_dim, out_dim, rng=rng)
