"""Bipartite user–item interaction graph.

``InteractionGraph`` is the per-domain heterogeneous graph ``G^Z = (U, V, E)``
of Section II.A.  It stores the observed edges, exposes per-node neighbour
lists / degrees and builds the Laplacian-normalised sparse adjacency operators
used by the heterogeneous graph encoder (Eq. 3–4).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..tensor import engine

__all__ = ["InteractionGraph"]


class InteractionGraph:
    """Immutable bipartite interaction graph for a single domain.

    Parameters
    ----------
    num_users, num_items:
        Node counts of the two partitions.
    user_indices, item_indices:
        Parallel integer arrays describing the observed edges
        ``(user_indices[k], item_indices[k])``.  Duplicate edges are merged.
    """

    def __init__(
        self,
        num_users: int,
        num_items: int,
        user_indices: Sequence[int],
        item_indices: Sequence[int],
    ) -> None:
        if num_users <= 0 or num_items <= 0:
            raise ValueError("graph requires at least one user and one item")
        user_indices = np.asarray(user_indices, dtype=np.int64)
        item_indices = np.asarray(item_indices, dtype=np.int64)
        if user_indices.shape != item_indices.shape:
            raise ValueError("user_indices and item_indices must have equal length")
        if user_indices.size:
            if user_indices.min() < 0 or user_indices.max() >= num_users:
                raise ValueError("user index out of range")
            if item_indices.min() < 0 or item_indices.max() >= num_items:
                raise ValueError("item index out of range")

        self.num_users = int(num_users)
        self.num_items = int(num_items)

        # Deduplicate edges so the adjacency is 0/1 as in the paper (e = 1).
        matrix = sp.coo_matrix(
            (np.ones(user_indices.size), (user_indices, item_indices)),
            shape=(num_users, num_items),
        ).tocsr()
        matrix.data[:] = 1.0
        matrix.eliminate_zeros()
        self._adjacency: sp.csr_matrix = matrix

        coo = matrix.tocoo()
        self.user_indices = coo.row.astype(np.int64)
        self.item_indices = coo.col.astype(np.int64)

        # Derived sparse operators are memoised here (keyed by name and
        # engine dtype): the graph is immutable, yet the encoder used to
        # rebuild them with sparse diag-multiplies on every forward pass.
        self._operator_cache: Dict[Tuple[str, str], sp.spmatrix] = {}
        self._csc: Optional[sp.csc_matrix] = None
        self._item_edge_order: Optional[np.ndarray] = None

    @classmethod
    def from_csr(
        cls,
        num_users: int,
        num_items: int,
        indptr: np.ndarray,
        indices: np.ndarray,
    ) -> "InteractionGraph":
        """Trusted constructor from an already-canonical CSR structure.

        ``indptr``/``indices`` must describe a user-major CSR whose column
        indices are **sorted and unique within each row** and in range —
        exactly what slicing another canonical adjacency produces.  This
        skips the COO round-trip and duplicate merge of ``__init__`` (the
        dominant cost of building per-step induced subgraphs); only cheap
        structural invariants are checked.
        """
        if num_users <= 0 or num_items <= 0:
            raise ValueError("graph requires at least one user and one item")
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        bad_shape = indptr.shape != (num_users + 1,)
        if bad_shape or indptr[0] != 0 or indptr[-1] != indices.size:
            raise ValueError("indptr does not describe a CSR over the given shape")
        if indices.size and (indices.min() < 0 or indices.max() >= num_items):
            raise ValueError("item index out of range")

        graph = cls.__new__(cls)
        graph.num_users = int(num_users)
        graph.num_items = int(num_items)
        matrix = sp.csr_matrix(
            (np.ones(indices.size), indices, indptr), shape=(num_users, num_items)
        )
        # The caller guarantees canonical form; record it so scipy never
        # re-sorts or re-merges behind our back.
        matrix.has_sorted_indices = True
        matrix.has_canonical_format = True
        graph._adjacency = matrix
        graph.user_indices = np.repeat(
            np.arange(num_users, dtype=np.int64), np.diff(indptr)
        )
        graph.item_indices = indices.copy()
        graph._operator_cache = {}
        graph._csc = None
        graph._item_edge_order = None
        return graph

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return int(self._adjacency.nnz)

    @property
    def density(self) -> float:
        """Fraction of the user×item matrix that is observed."""
        return self.num_edges / float(self.num_users * self.num_items)

    def user_degrees(self) -> np.ndarray:
        """``|N_{u_i}|`` for every user (Eq. 3 normalisation)."""
        return np.asarray(self._adjacency.sum(axis=1)).ravel()

    def item_degrees(self) -> np.ndarray:
        """``|N_{v_j}|`` for every item."""
        return np.asarray(self._adjacency.sum(axis=0)).ravel()

    def user_neighbors(self, user: int) -> np.ndarray:
        """Items interacted with by ``user``."""
        start, stop = self._adjacency.indptr[user], self._adjacency.indptr[user + 1]
        return self._adjacency.indices[start:stop].astype(np.int64)

    def _adjacency_csc(self) -> sp.csc_matrix:
        """Item-major (CSC) view of the adjacency, built once."""
        if self._csc is None:
            self._csc = self._adjacency.tocsc()
        return self._csc

    def item_neighbors(self, item: int) -> np.ndarray:
        """Users who interacted with ``item``."""
        csc = self._adjacency_csc()
        start, stop = csc.indptr[item], csc.indptr[item + 1]
        return csc.indices[start:stop].astype(np.int64)

    def has_edge(self, user: int, item: int) -> bool:
        return bool(self._adjacency[user, item] != 0)

    def adjacency(self) -> sp.csr_matrix:
        """Binary user×item adjacency (copy-safe CSR view)."""
        return self._adjacency

    def adjacency_item_major(self) -> sp.csc_matrix:
        """Item-major (CSC) adjacency view, built once and shared.

        Column ``v``'s indices are the users of item ``v`` — the structure
        the k-hop subgraph sampler walks in the item→user direction.
        """
        return self._adjacency_csc()

    # ------------------------------------------------------------------
    # normalised propagation operators (memoised: the graph is immutable)
    # ------------------------------------------------------------------
    def _cached_operator(
        self, name: str, builder: Callable[[], sp.spmatrix]
    ) -> sp.spmatrix:
        """Build-once cache for derived sparse operators.

        Keyed by the engine dtype so the ``float32`` fast path gets operators
        it can multiply without upcasting.  Returned matrices are shared —
        callers must treat them as read-only.
        """
        dtype = engine.get_dtype()
        key = (name, dtype.str)
        operator = self._operator_cache.get(key)
        if operator is None:
            operator = builder()
            if operator.dtype != dtype:
                operator = operator.astype(dtype)
            self._operator_cache[key] = operator
        return operator

    def user_aggregation_matrix(self) -> sp.csr_matrix:
        """Row-normalised user×item matrix: row ``u`` holds ``1/|N_u|`` per neighbour.

        Multiplying it by the item-feature matrix realises the
        ``sum_j m_{u<-v_j}`` aggregation of Eq. 4 with the ``1/|N_u|`` norm of
        Eq. 3 already folded in.
        """

        def build() -> sp.csr_matrix:
            degrees = self.user_degrees()
            inverse = np.divide(
                1.0,
                degrees,
                out=np.zeros_like(degrees),
                where=degrees > 0,
            )
            return sp.diags(inverse) @ self._adjacency

        return self._cached_operator("user_aggregation", build)

    def item_aggregation_matrix(self) -> sp.csr_matrix:
        """Row-normalised item×user matrix (symmetric role for item updates)."""

        def build() -> sp.csr_matrix:
            degrees = self.item_degrees()
            inverse = np.divide(
                1.0,
                degrees,
                out=np.zeros_like(degrees),
                where=degrees > 0,
            )
            return sp.diags(inverse) @ self._adjacency.T.tocsr()

        return self._cached_operator("item_aggregation", build)

    def symmetric_normalized_adjacency(self) -> sp.csr_matrix:
        """GCN-style ``D_u^{-1/2} A D_v^{-1/2}`` operator (used by the GCN kernel)."""

        def build() -> sp.csr_matrix:
            user_deg = self.user_degrees()
            item_deg = self.item_degrees()
            d_u = np.divide(
                1.0, np.sqrt(user_deg), out=np.zeros_like(user_deg), where=user_deg > 0
            )
            d_v = np.divide(
                1.0, np.sqrt(item_deg), out=np.zeros_like(item_deg), where=item_deg > 0
            )
            return sp.diags(d_u) @ self._adjacency @ sp.diags(d_v)

        return self._cached_operator("symmetric_normalized", build)

    def symmetric_normalized_adjacency_transpose(self) -> sp.csr_matrix:
        """Item×user transpose of the GCN operator, cached in CSR form."""
        return self._cached_operator(
            "symmetric_normalized_T",
            lambda: self.symmetric_normalized_adjacency().T.tocsr(),
        )

    # ------------------------------------------------------------------
    # per-edge operators with a fixed sparsity pattern
    # ------------------------------------------------------------------
    def user_edge_operator(self, edge_weights: np.ndarray) -> sp.csr_matrix:
        """User×item operator whose entry for edge ``k`` is ``edge_weights[k]``.

        ``edge_weights`` is aligned with :attr:`user_indices` /
        :attr:`item_indices`.  The CSR structure (indptr/indices) is the
        adjacency's own and is reused — only the data array is fresh, so
        per-step attention operators (GAT) skip the COO→CSR conversion.
        """
        edge_weights = np.asarray(edge_weights)
        if edge_weights.shape != (self.num_edges,):
            raise ValueError(
                f"expected {self.num_edges} edge weights, got shape {edge_weights.shape}"
            )
        # self.user_indices/item_indices come from the CSR's own COO view,
        # so edge order k already matches the CSR data layout.
        return sp.csr_matrix(
            (edge_weights, self._adjacency.indices, self._adjacency.indptr),
            shape=(self.num_users, self.num_items),
        )

    def item_edge_operator(self, edge_weights: np.ndarray) -> sp.csr_matrix:
        """Item×user counterpart of :meth:`user_edge_operator`."""
        edge_weights = np.asarray(edge_weights)
        if edge_weights.shape != (self.num_edges,):
            raise ValueError(
                f"expected {self.num_edges} edge weights, got shape {edge_weights.shape}"
            )
        if self._item_edge_order is None:
            # Permutation taking user-major edge order to item-major order.
            self._item_edge_order = np.lexsort((self.user_indices, self.item_indices))
        csc = self._adjacency_csc()
        return sp.csr_matrix(
            (edge_weights[self._item_edge_order], csc.indices, csc.indptr),
            shape=(self.num_items, self.num_users),
        )

    def edge_sum_operator(self) -> sp.csr_matrix:
        """User×edge incidence operator: row ``u`` sums that user's edges.

        Multiplying it by per-edge values realises ``sum over N_u`` (the
        denominator/aggregation of Eq. 18–19).  Cached — the node
        complementing module used to rebuild it from COO every forward.
        """

        def build() -> sp.csr_matrix:
            # Edges are user-major sorted, so each user's edges are contiguous.
            indptr = np.concatenate(
                ([0], np.cumsum(self.user_degrees())),
            ).astype(np.int64)
            return sp.csr_matrix(
                (
                    np.ones(self.num_edges),
                    np.arange(self.num_edges, dtype=np.int64),
                    indptr,
                ),
                shape=(self.num_users, self.num_edges),
            )

        return self._cached_operator("edge_sum", build)

    # ------------------------------------------------------------------
    # head / tail partition (Eq. 5)
    # ------------------------------------------------------------------
    def head_tail_split(self, threshold: int) -> Tuple[np.ndarray, np.ndarray]:
        """Split users into head (> threshold interactions) and tail users.

        Note: Eq. 5 of the paper prints the inequality inverted relative to
        the prose; we follow the prose and Section III.E.2 ("If the historical
        interactions of a user is greater than K_head, then he/she is regarded
        as a head user").
        """
        degrees = self.user_degrees()
        head = np.where(degrees > threshold)[0]
        tail = np.where(degrees <= threshold)[0]
        return head.astype(np.int64), tail.astype(np.int64)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def edge_list(self) -> List[Tuple[int, int]]:
        """Return the edges as ``(user, item)`` tuples (test convenience)."""
        return list(zip(self.user_indices.tolist(), self.item_indices.tolist()))

    def to_networkx(self):
        """Export to a ``networkx`` bipartite graph (analysis / debugging)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from((f"u{u}" for u in range(self.num_users)), bipartite=0)
        graph.add_nodes_from((f"v{v}" for v in range(self.num_items)), bipartite=1)
        graph.add_edges_from(
            (f"u{u}", f"v{v}") for u, v in zip(self.user_indices, self.item_indices)
        )
        return graph

    def __repr__(self) -> str:
        return (
            f"InteractionGraph(users={self.num_users}, items={self.num_items}, "
            f"edges={self.num_edges}, density={self.density:.5f})"
        )
