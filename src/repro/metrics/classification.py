"""Binary classification metrics: AUC, log-loss and the CVR used in Sec. III.C."""

from __future__ import annotations

import numpy as np

__all__ = ["auc", "log_loss", "conversion_rate"]

_EPS = 1e-12


def auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum formulation.

    Handles ties by averaging ranks; returns 0.5 when only one class is
    present (undefined case).
    """
    labels = np.asarray(labels, dtype=np.float64).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same shape")
    positives = labels > 0.5
    n_pos = int(positives.sum())
    n_neg = int(labels.size - n_pos)
    if n_pos == 0 or n_neg == 0:
        return 0.5
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty_like(order, dtype=np.float64)
    ranks[order] = np.arange(1, labels.size + 1)
    # average ranks over ties
    sorted_scores = scores[order]
    unique, start_index, counts = np.unique(
        sorted_scores,
        return_index=True,
        return_counts=True,
    )
    for start, count in zip(start_index, counts):
        if count > 1:
            tie_positions = order[start : start + count]
            ranks[tie_positions] = ranks[tie_positions].mean()
    pos_rank_sum = ranks[positives].sum()
    return float((pos_rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def log_loss(labels: np.ndarray, probabilities: np.ndarray) -> float:
    """Average binary cross-entropy of predicted probabilities."""
    labels = np.asarray(labels, dtype=np.float64).ravel()
    probabilities = np.clip(
        np.asarray(probabilities, dtype=np.float64).ravel(),
        _EPS,
        1 - _EPS,
    )
    if labels.shape != probabilities.shape:
        raise ValueError("labels and probabilities must have the same shape")
    return float(
        -np.mean(labels * np.log(probabilities) + (1 - labels) * np.log(1 - probabilities))
    )


def conversion_rate(conversions: np.ndarray, impressions: int) -> float:
    """CVR: conversions divided by impressions (the online A/B metric)."""
    if impressions <= 0:
        raise ValueError("impressions must be positive")
    total = float(np.asarray(conversions, dtype=np.float64).sum())
    return total / float(impressions)
