"""Top-N ranking metrics: HR@K, NDCG@K and MRR.

The evaluation protocol (Sec. III.A.2) ranks one ground-truth positive among
199 sampled negatives; the metrics below operate on the resulting score
matrices where **column 0 is always the positive item**.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

__all__ = ["rank_of_positive", "hit_rate_at_k", "ndcg_at_k", "mrr", "ranking_report"]


def rank_of_positive(scores: np.ndarray) -> np.ndarray:
    """Return the 1-based rank of column 0 within each row of ``scores``.

    Ties are broken pessimistically (a tie counts as being ranked below),
    which avoids inflating metrics for constant scorers.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2 or scores.shape[1] < 2:
        raise ValueError("scores must be a 2-D matrix with at least two candidates")
    positive = scores[:, :1]
    better = (scores[:, 1:] >= positive).sum(axis=1)
    return better + 1


def hit_rate_at_k(scores: np.ndarray, k: int = 10) -> float:
    """HR@K: fraction of rows whose positive lands in the top ``k``."""
    if k <= 0:
        raise ValueError("k must be positive")
    ranks = rank_of_positive(scores)
    if ranks.size == 0:
        return 0.0
    return float(np.mean(ranks <= k))


def ndcg_at_k(scores: np.ndarray, k: int = 10) -> float:
    """NDCG@K with a single relevant item per row: ``1 / log2(1 + rank)`` if hit."""
    if k <= 0:
        raise ValueError("k must be positive")
    ranks = rank_of_positive(scores)
    if ranks.size == 0:
        return 0.0
    gains = np.where(ranks <= k, 1.0 / np.log2(ranks + 1.0), 0.0)
    return float(np.mean(gains))


def mrr(scores: np.ndarray) -> float:
    """Mean reciprocal rank of the positive item."""
    ranks = rank_of_positive(scores)
    if ranks.size == 0:
        return 0.0
    return float(np.mean(1.0 / ranks))


def ranking_report(scores: np.ndarray, ks: Sequence[int] = (5, 10)) -> Dict[str, float]:
    """Convenience bundle of the metrics the paper reports (HR@10 / NDCG@10)."""
    report: Dict[str, float] = {"mrr": mrr(scores)}
    for k in ks:
        report[f"hr@{k}"] = hit_rate_at_k(scores, k)
        report[f"ndcg@{k}"] = ndcg_at_k(scores, k)
    return report
