"""The 1-positive + 199-negative leave-one-out evaluation protocol.

Any model exposing ``score(domain_key, users, items) -> np.ndarray`` can be
evaluated; ``domain_key`` is ``"a"`` or ``"b"`` selecting the domain of a CDR
scenario (single-domain baselines simply ignore the other domain).
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol, Sequence

import numpy as np

from ..data.negative_sampling import build_ranking_candidates
from ..data.split import DomainSplit
from .ranking import ranking_report

__all__ = ["Scorer", "RankingEvaluator", "evaluate_split"]


class Scorer(Protocol):
    """Minimal scoring interface every recommender in this repo implements."""

    def score(
        self,
        domain_key: str,
        users: np.ndarray,
        items: np.ndarray,
    ) -> np.ndarray:
        """Return an affinity score per (user, item) pair, higher is better."""
        ...


class RankingEvaluator:
    """Pre-samples ranking candidates once and evaluates any number of models.

    Sharing the candidate lists across models removes sampling noise from the
    model comparison (all models rank exactly the same 200 candidates per
    user), which is the fair-comparison setup the paper describes.
    """

    def __init__(
        self,
        split: DomainSplit,
        domain_key: str,
        num_negatives: int = 199,
        ks: Sequence[int] = (5, 10),
        subset: str = "test",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if domain_key not in {"a", "b"}:
            raise ValueError("domain_key must be 'a' or 'b'")
        self.domain_key = domain_key
        self.ks = tuple(ks)
        self.users, self.candidates = build_ranking_candidates(
            split, num_negatives=num_negatives, rng=rng, subset=subset
        )

    @property
    def num_eval_users(self) -> int:
        return int(self.users.shape[0])

    def score_matrix(self, model: Scorer, batch_size: int = 4096) -> np.ndarray:
        """Score every candidate; returns ``(num_eval_users, num_candidates)``."""
        if self.num_eval_users == 0:
            return np.zeros((0, self.candidates.shape[1]))
        n_users, n_candidates = self.candidates.shape
        flat_users = np.repeat(self.users, n_candidates)
        flat_items = self.candidates.reshape(-1)
        scores = np.empty(flat_users.shape[0], dtype=np.float64)
        for start in range(0, flat_users.shape[0], batch_size):
            stop = start + batch_size
            scores[start:stop] = np.asarray(
                model.score(self.domain_key, flat_users[start:stop], flat_items[start:stop])
            ).ravel()
        return scores.reshape(n_users, n_candidates)

    def evaluate(self, model: Scorer) -> Dict[str, float]:
        """Return HR@K / NDCG@K / MRR for ``model`` on the held-out positives."""
        scores = self.score_matrix(model)
        return ranking_report(scores, ks=self.ks)


def evaluate_split(
    model: Scorer,
    split: DomainSplit,
    domain_key: str,
    num_negatives: int = 199,
    ks: Sequence[int] = (5, 10),
    subset: str = "test",
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, float]:
    """One-shot convenience wrapper around :class:`RankingEvaluator`."""
    evaluator = RankingEvaluator(
        split, domain_key, num_negatives=num_negatives, ks=ks, subset=subset, rng=rng
    )
    return evaluator.evaluate(model)
