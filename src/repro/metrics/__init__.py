"""Evaluation metrics and the leave-one-out ranking protocol."""

from .beyond_accuracy import (
    average_popularity_lift,
    beyond_accuracy_report,
    catalog_coverage,
    gini_concentration,
    intra_list_overlap,
    top_k_from_scores,
)
from .classification import auc, conversion_rate, log_loss
from .evaluator import RankingEvaluator, Scorer, evaluate_split
from .ranking import hit_rate_at_k, mrr, ndcg_at_k, rank_of_positive, ranking_report

__all__ = [
    "auc",
    "log_loss",
    "conversion_rate",
    "catalog_coverage",
    "gini_concentration",
    "average_popularity_lift",
    "intra_list_overlap",
    "beyond_accuracy_report",
    "top_k_from_scores",
    "rank_of_positive",
    "hit_rate_at_k",
    "ndcg_at_k",
    "mrr",
    "ranking_report",
    "Scorer",
    "RankingEvaluator",
    "evaluate_split",
]
