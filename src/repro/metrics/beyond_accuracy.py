"""Beyond-accuracy recommendation metrics: coverage, concentration and novelty.

The paper evaluates ranking accuracy only (HR/NDCG), but a production CDR
system — the setting of the MYbank deployment in Sec. III.C — also cares about
how much of the catalogue the model actually recommends and how concentrated
its recommendations are on popular items.  These metrics are used by the
tail-user analysis example and are available to any downstream user.

All functions operate on a matrix of recommended item ids of shape
``(num_users, k)`` (the top-k lists) plus, where needed, item popularity counts
from the training data.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

__all__ = [
    "catalog_coverage",
    "gini_concentration",
    "average_popularity_lift",
    "intra_list_overlap",
    "beyond_accuracy_report",
    "top_k_from_scores",
]


def top_k_from_scores(scores: np.ndarray, candidates: np.ndarray, k: int = 10) -> np.ndarray:
    """Select the top-``k`` candidate item ids per row from a score matrix.

    ``scores`` and ``candidates`` have identical shape ``(num_users,
    num_candidates)``; the returned matrix has shape ``(num_users, k)``.
    """
    scores = np.asarray(scores, dtype=np.float64)
    candidates = np.asarray(candidates, dtype=np.int64)
    if scores.shape != candidates.shape:
        raise ValueError("scores and candidates must have the same shape")
    if k <= 0 or k > scores.shape[1]:
        raise ValueError(f"k must be in [1, {scores.shape[1]}], got {k}")
    order = np.argsort(-scores, axis=1, kind="stable")[:, :k]
    return np.take_along_axis(candidates, order, axis=1)


def catalog_coverage(recommendations: np.ndarray, num_items: int) -> float:
    """Fraction of the catalogue that appears in at least one top-k list."""
    recommendations = np.asarray(recommendations, dtype=np.int64)
    if num_items <= 0:
        raise ValueError("num_items must be positive")
    unique = np.unique(recommendations)
    return float(unique.size) / float(num_items)


def gini_concentration(recommendations: np.ndarray, num_items: int) -> float:
    """Gini coefficient of how recommendations are distributed over items.

    0 = perfectly even exposure across the catalogue, 1 = all recommendations
    concentrated on a single item.
    """
    recommendations = np.asarray(recommendations, dtype=np.int64)
    if num_items <= 0:
        raise ValueError("num_items must be positive")
    counts = np.bincount(recommendations.reshape(-1), minlength=num_items).astype(np.float64)
    if counts.sum() == 0:
        return 0.0
    sorted_counts = np.sort(counts)
    n = sorted_counts.size
    cumulative = np.cumsum(sorted_counts)
    # standard Gini formula on the exposure distribution
    gini = (n + 1 - 2.0 * np.sum(cumulative) / cumulative[-1]) / n
    return float(max(0.0, min(1.0, gini)))


def average_popularity_lift(
    recommendations: np.ndarray, item_popularity: np.ndarray
) -> float:
    """Mean training popularity of recommended items divided by the catalogue mean.

    Values well above 1 indicate a popularity-biased recommender; values near 1
    indicate recommendations spread proportionally to a uniform catalogue.
    """
    recommendations = np.asarray(recommendations, dtype=np.int64)
    item_popularity = np.asarray(item_popularity, dtype=np.float64)
    if item_popularity.ndim != 1:
        raise ValueError("item_popularity must be a 1-D array of per-item counts")
    catalogue_mean = item_popularity.mean()
    if catalogue_mean == 0:
        return float("nan")
    recommended_mean = item_popularity[recommendations.reshape(-1)].mean()
    return float(recommended_mean / catalogue_mean)


def intra_list_overlap(recommendations: np.ndarray) -> float:
    """Average pairwise Jaccard overlap between different users' top-k lists.

    High overlap means every user receives nearly the same list (no
    personalisation); low overlap means lists are diverse across users.
    Computed over at most 200 randomly ordered users to stay cheap.
    """
    recommendations = np.asarray(recommendations, dtype=np.int64)
    num_users = recommendations.shape[0]
    if num_users < 2:
        return 0.0
    limit = min(num_users, 200)
    lists = [set(row.tolist()) for row in recommendations[:limit]]
    overlaps = []
    for i in range(len(lists)):
        for j in range(i + 1, len(lists)):
            union = len(lists[i] | lists[j])
            if union == 0:
                continue
            overlaps.append(len(lists[i] & lists[j]) / union)
    return float(np.mean(overlaps)) if overlaps else 0.0


def beyond_accuracy_report(
    recommendations: np.ndarray,
    num_items: int,
    item_popularity: Optional[np.ndarray] = None,
) -> Dict[str, float]:
    """Bundle of the beyond-accuracy metrics for one recommender's top-k lists."""
    report = {
        "catalog_coverage": catalog_coverage(recommendations, num_items),
        "gini_concentration": gini_concentration(recommendations, num_items),
        "intra_list_overlap": intra_list_overlap(recommendations),
    }
    if item_popularity is not None:
        report["popularity_lift"] = average_popularity_lift(recommendations, item_popularity)
    return report
