"""Quantitative head/tail embedding alignment analysis (Fig. 5).

Fig. 5 of the paper is a qualitative t-SNE plot arguing that the tail-user
embedding distribution progressively aligns with the head-user distribution as
the representations move through the NMCDR pipeline.  Without a plotting
backend we report numeric alignment scores per stage instead:

* normalised centroid distance between the head and tail embedding clouds,
* a Gaussian-kernel maximum mean discrepancy (MMD) between the two clouds,
* the ratio of average within-group to between-group distances.

Lower values at later stages = better alignment = the paper's claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.nmcdr import NMCDR, STAGES
from .tsne import pairwise_squared_distances, tsne

__all__ = [
    "AlignmentScores",
    "head_tail_alignment",
    "stagewise_alignment",
    "tsne_projection",
]


@dataclass
class AlignmentScores:
    """Alignment statistics between head-user and tail-user embedding clouds."""

    stage: str
    centroid_distance: float
    mmd: float
    between_within_ratio: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "stage": self.stage,
            "centroid_distance": self.centroid_distance,
            "mmd": self.mmd,
            "between_within_ratio": self.between_within_ratio,
        }


def _gaussian_mmd(
    x: np.ndarray,
    y: np.ndarray,
    bandwidth: Optional[float] = None,
) -> float:
    """Unbiased-ish Gaussian-kernel MMD² estimate between two samples."""
    combined = np.vstack([x, y])
    distances = pairwise_squared_distances(combined)
    if bandwidth is None:
        median = np.median(distances[distances > 0]) if np.any(distances > 0) else 1.0
        bandwidth = max(median, 1e-8)
    kernel = np.exp(-distances / bandwidth)
    n, m = x.shape[0], y.shape[0]
    k_xx = kernel[:n, :n]
    k_yy = kernel[n:, n:]
    k_xy = kernel[:n, n:]
    return float(k_xx.mean() + k_yy.mean() - 2.0 * k_xy.mean())


def head_tail_alignment(
    embeddings: np.ndarray,
    head_indices: np.ndarray,
    tail_indices: np.ndarray,
    stage: str = "",
) -> AlignmentScores:
    """Compute alignment scores for one embedding matrix."""
    head_indices = np.asarray(head_indices, dtype=np.int64)
    tail_indices = np.asarray(tail_indices, dtype=np.int64)
    if head_indices.size == 0 or tail_indices.size == 0:
        raise ValueError("both head and tail groups must be non-empty")
    head = embeddings[head_indices]
    tail = embeddings[tail_indices]

    scale = float(np.linalg.norm(embeddings.std(axis=0)) + 1e-12)
    centroid_distance = float(
        np.linalg.norm(head.mean(axis=0) - tail.mean(axis=0)),
    ) / scale

    mmd = _gaussian_mmd(head, tail)

    within_head = pairwise_squared_distances(head).mean()
    within_tail = pairwise_squared_distances(tail).mean()
    between = np.mean(
        np.sum((head[:, None, :] - tail[None, :, :]) ** 2, axis=-1)
    )
    within = (within_head + within_tail) / 2.0
    ratio = float(between / max(within, 1e-12))

    return AlignmentScores(
        stage=stage,
        centroid_distance=centroid_distance,
        mmd=mmd,
        between_within_ratio=ratio,
    )


def stagewise_alignment(
    model: NMCDR,
    domain_key: str,
    max_users_per_group: int = 150,
    rng: Optional[np.random.Generator] = None,
) -> List[AlignmentScores]:
    """Alignment scores after the encoder, the matching module and the complementing module.

    Mirrors the three columns of Fig. 5: ``user_g1`` (graph encoder output),
    ``user_g3`` (after intra-to-inter matching), ``user_g4`` (after
    complementing).
    """
    rng = rng or np.random.default_rng(0)
    partition = model.task.domain(domain_key).partition
    head = partition.head_users
    tail = partition.tail_users
    if head.size > max_users_per_group:
        head = rng.choice(head, size=max_users_per_group, replace=False)
    if tail.size > max_users_per_group:
        tail = rng.choice(tail, size=max_users_per_group, replace=False)

    representations = model.stage_representations(domain_key)
    scores = []
    for stage in ("user_g1", "user_g3", "user_g4"):
        scores.append(
            head_tail_alignment(representations[stage], head, tail, stage=stage),
        )
    return scores


def tsne_projection(
    model: NMCDR,
    domain_key: str,
    stage: str = "user_g4",
    max_users: int = 200,
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, np.ndarray]:
    """2-D t-SNE projection of (a sample of) one stage's user embeddings.

    Returns the projected coordinates together with a boolean head-user mask so
    callers can reproduce the Fig. 5 scatter colouring.
    """
    if stage not in STAGES:
        raise KeyError(f"unknown stage '{stage}'; known: {STAGES}")
    rng = rng or np.random.default_rng(0)
    representations = model.stage_representations(domain_key)[stage]
    partition = model.task.domain(domain_key).partition
    num_users = representations.shape[0]
    if num_users > max_users:
        chosen = rng.choice(num_users, size=max_users, replace=False)
    else:
        chosen = np.arange(num_users)
    coordinates = tsne(representations[chosen], rng=rng)
    head_mask = np.isin(chosen, partition.head_users)
    return {"coordinates": coordinates, "is_head": head_mask, "user_indices": chosen}
