"""Training-curve analysis helpers.

The trainer records a loss per epoch and (optionally) validation metrics per
evaluation round; these helpers summarise those curves: smoothing, convergence
detection and a compact convergence report used by the examples and by users
comparing how quickly different models fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..core.trainer import TrainingHistory

__all__ = [
    "moving_average",
    "convergence_epoch",
    "relative_improvement",
    "ConvergenceReport",
    "analyze_history",
]


def moving_average(values: Sequence[float], window: int = 3) -> List[float]:
    """Centered-left moving average with a warm-up (first values less smoothed)."""
    if window <= 0:
        raise ValueError("window must be positive")
    values = list(values)
    smoothed = []
    for index in range(len(values)):
        start = max(0, index - window + 1)
        smoothed.append(float(np.mean(values[start : index + 1])))
    return smoothed


def convergence_epoch(losses: Sequence[float], tolerance: float = 0.01) -> int:
    """First epoch after which the relative loss improvement stays below ``tolerance``.

    Returns the last epoch index if the curve never flattens (still improving).
    """
    losses = list(losses)
    if not losses:
        raise ValueError("losses must be non-empty")
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    for index in range(1, len(losses)):
        previous, current = losses[index - 1], losses[index]
        if previous <= 0:
            continue
        if (previous - current) / abs(previous) < tolerance:
            return index
    return len(losses) - 1


def relative_improvement(losses: Sequence[float]) -> float:
    """Total relative loss reduction from the first to the last epoch."""
    losses = list(losses)
    if not losses:
        raise ValueError("losses must be non-empty")
    first, last = losses[0], losses[-1]
    if first == 0:
        return 0.0
    return float((first - last) / abs(first))


@dataclass
class ConvergenceReport:
    """Summary of one training run's loss curve."""

    num_epochs: int
    initial_loss: float
    final_loss: float
    total_relative_improvement: float
    convergence_epoch: int
    seconds_per_batch: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "num_epochs": self.num_epochs,
            "initial_loss": self.initial_loss,
            "final_loss": self.final_loss,
            "total_relative_improvement": self.total_relative_improvement,
            "convergence_epoch": self.convergence_epoch,
            "seconds_per_batch": self.seconds_per_batch,
        }


def analyze_history(
    history: TrainingHistory,
    tolerance: float = 0.01,
) -> ConvergenceReport:
    """Build a :class:`ConvergenceReport` from a trainer's :class:`TrainingHistory`."""
    losses = history.epoch_losses
    if not losses:
        raise ValueError("history contains no epochs")
    return ConvergenceReport(
        num_epochs=len(losses),
        initial_loss=float(losses[0]),
        final_loss=float(losses[-1]),
        total_relative_improvement=relative_improvement(losses),
        convergence_epoch=convergence_epoch(losses, tolerance=tolerance),
        seconds_per_batch=float(history.train_seconds_per_batch),
    )
