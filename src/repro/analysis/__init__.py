"""Analysis utilities: t-SNE, head/tail alignment, efficiency accounting."""

from .efficiency import EfficiencyReport, measure_efficiency
from .embedding_analysis import (
    AlignmentScores,
    head_tail_alignment,
    stagewise_alignment,
    tsne_projection,
)
from .training_curves import (
    ConvergenceReport,
    analyze_history,
    convergence_epoch,
    moving_average,
    relative_improvement,
)
from .tsne import pairwise_squared_distances, tsne

__all__ = [
    "ConvergenceReport",
    "analyze_history",
    "convergence_epoch",
    "moving_average",
    "relative_improvement",
    "tsne",
    "pairwise_squared_distances",
    "AlignmentScores",
    "head_tail_alignment",
    "stagewise_alignment",
    "tsne_projection",
    "EfficiencyReport",
    "measure_efficiency",
]
