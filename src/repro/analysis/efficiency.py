"""Model efficiency accounting (Section III.B.6).

The paper compares parameter counts and per-batch training/testing time for
PLE, MiNet, HeroGraph and NMCDR.  This module measures the same quantities for
any model trained by :class:`repro.core.CDRTrainer`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..core.task import CDRTask
from ..data.dataloader import InteractionDataLoader
from ..optim import Adam

__all__ = ["EfficiencyReport", "measure_efficiency"]


@dataclass
class EfficiencyReport:
    """Parameter count and per-batch timings for one model on one task.

    ``train_seconds_per_batch`` / ``test_seconds_per_batch`` are medians
    (robust to warm-up and load spikes); the historical seed numbers were
    means, so the mean is kept alongside for apples-to-apples comparisons.
    """

    model_name: str
    num_parameters: int
    train_seconds_per_batch: float
    test_seconds_per_batch: float
    batch_size: int
    train_seconds_per_batch_mean: float = float("nan")
    test_seconds_per_batch_mean: float = float("nan")
    #: Mean per-batch data-preparation cost (drawing the mini-batches from
    #: the loaders).  The mean — not the median — is deliberate: the
    #: epoch-boundary materialisation and negative sampling land entirely in
    #: the first draw, and a median over the cheap slice draws would hide
    #: exactly the cost this field exists to record.  Step timings exclude
    #: it; recording it alongside keeps the record honest about wall cost.
    data_seconds_per_batch: float = float("nan")

    def as_dict(self) -> Dict[str, float]:
        return {
            "model": self.model_name,
            "parameters": self.num_parameters,
            "train_s_per_batch": self.train_seconds_per_batch,
            "test_s_per_batch": self.test_seconds_per_batch,
            "train_s_per_batch_mean": self.train_seconds_per_batch_mean,
            "test_s_per_batch_mean": self.test_seconds_per_batch_mean,
            "data_s_per_batch": self.data_seconds_per_batch,
            "batch_size": self.batch_size,
        }


def measure_efficiency(
    model,
    task: CDRTask,
    batch_size: int = 256,
    num_train_batches: int = 5,
    num_test_batches: int = 5,
    seed: int = 0,
) -> EfficiencyReport:
    """Time forward+backward+update steps and pure scoring batches.

    The model is not meaningfully trained here — the measurement exercises the
    same code path the trainer uses, on ``num_train_batches`` mini-batches, and
    then times ``num_test_batches`` scoring calls of ``batch_size`` pairs.

    Per-batch times are summarised by their **median**: one-time costs (cached
    graph operators, gradient-buffer warm-up) land in the first batch and
    background-load spikes hit single batches, and neither should swing a
    regression-tracking number the way they swing a mean.
    """
    rng = np.random.default_rng(seed)
    optimizer = Adam(model.parameters(), lr=1e-3)
    loaders = {
        key: InteractionDataLoader(
            task.domain(key).split, batch_size=batch_size, rng=np.random.default_rng(seed + i)
        )
        for i, key in enumerate(("a", "b"))
    }

    # Training timing: one batch per domain per step, matching the trainer.
    iterator_a = iter(loaders["a"])
    iterator_b = iter(loaders["b"])
    train_times = []
    data_times = []
    for _ in range(num_train_batches):
        data_started = time.perf_counter()
        batch_a = next(iterator_a, None)
        batch_b = next(iterator_b, None)
        if batch_a is None and batch_b is None:
            # The exhausted draw precedes no step; timing it would dilute
            # the per-batch data cost the mean exists to capture.
            break
        data_times.append(time.perf_counter() - data_started)
        started = time.perf_counter()
        optimizer.zero_grad()
        loss = model.compute_batch_loss({"a": batch_a, "b": batch_b})
        loss.backward()
        optimizer.step()
        model.invalidate_cache()
        train_times.append(time.perf_counter() - started)

    # Scoring timing.
    model.prepare_for_evaluation()
    domain = task.domain_a
    test_times = []
    for _ in range(num_test_batches):
        users = rng.integers(0, domain.num_users, size=batch_size)
        items = rng.integers(0, domain.num_items, size=batch_size)
        started = time.perf_counter()
        model.score("a", users, items)
        test_times.append(time.perf_counter() - started)

    return EfficiencyReport(
        model_name=getattr(model, "display_name", type(model).__name__),
        num_parameters=model.num_parameters(),
        train_seconds_per_batch=float(np.median(train_times)) if train_times else float("nan"),
        test_seconds_per_batch=float(np.median(test_times)) if test_times else float("nan"),
        batch_size=batch_size,
        train_seconds_per_batch_mean=float(np.mean(train_times)) if train_times else float("nan"),
        test_seconds_per_batch_mean=float(np.mean(test_times)) if test_times else float("nan"),
        data_seconds_per_batch=float(np.mean(data_times)) if data_times else float("nan"),
    )
