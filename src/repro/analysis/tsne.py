"""A compact t-SNE implementation for the Fig. 5 embedding visualisation.

scikit-learn is not available offline, so the classic Barnes-Hut-free t-SNE of
van der Maaten & Hinton (2008) is implemented directly on numpy: pairwise
affinities with per-point perplexity calibration, symmetrised P matrix,
Student-t low-dimensional affinities and gradient descent with momentum and
early exaggeration.  It is O(n²) and intended for the few hundred user
embeddings the analysis visualises.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["tsne", "pairwise_squared_distances"]


def pairwise_squared_distances(points: np.ndarray) -> np.ndarray:
    """Dense matrix of squared Euclidean distances."""
    points = np.asarray(points, dtype=np.float64)
    squared = np.sum(points ** 2, axis=1)
    distances = squared[:, None] + squared[None, :] - 2.0 * points @ points.T
    np.fill_diagonal(distances, 0.0)
    return np.maximum(distances, 0.0)


def _conditional_probabilities(
    distances: np.ndarray,
    perplexity: float,
    tol: float = 1e-4,
) -> np.ndarray:
    """Binary-search per-point precisions so each row's entropy matches ``perplexity``."""
    n = distances.shape[0]
    target_entropy = np.log(perplexity)
    probabilities = np.zeros((n, n))
    for i in range(n):
        beta_low, beta_high = -np.inf, np.inf
        beta = 1.0
        row = np.delete(distances[i], i)
        for _ in range(50):
            exponent = np.exp(-row * beta)
            total = exponent.sum()
            if total <= 0:
                prob = np.full_like(row, 1.0 / row.size)
            else:
                prob = exponent / total
            entropy = -np.sum(prob * np.log(np.maximum(prob, 1e-12)))
            difference = entropy - target_entropy
            if abs(difference) < tol:
                break
            if difference > 0:
                beta_low = beta
                beta = beta * 2.0 if beta_high == np.inf else (beta + beta_high) / 2.0
            else:
                beta_high = beta
                beta = beta / 2.0 if beta_low == -np.inf else (beta + beta_low) / 2.0
        full_row = np.insert(prob, i, 0.0)
        probabilities[i] = full_row
    return probabilities


def tsne(
    points: np.ndarray,
    num_components: int = 2,
    perplexity: float = 20.0,
    learning_rate: float = 100.0,
    num_iterations: int = 300,
    early_exaggeration: float = 4.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Project ``points`` to ``num_components`` dimensions with t-SNE."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("tsne expects a 2-D array of shape (n_samples, n_features)")
    n = points.shape[0]
    if n < 5:
        raise ValueError("tsne needs at least 5 samples")
    perplexity = min(perplexity, (n - 1) / 3.0)
    rng = rng or np.random.default_rng(0)

    distances = pairwise_squared_distances(points)
    conditional = _conditional_probabilities(distances, perplexity)
    joint = (conditional + conditional.T) / (2.0 * n)
    joint = np.maximum(joint, 1e-12)

    embedding = rng.normal(0.0, 1e-4, size=(n, num_components))
    update = np.zeros_like(embedding)
    momentum = 0.5

    for iteration in range(num_iterations):
        exaggeration = early_exaggeration if iteration < 100 else 1.0
        target = joint * exaggeration

        low_distances = pairwise_squared_distances(embedding)
        student = 1.0 / (1.0 + low_distances)
        np.fill_diagonal(student, 0.0)
        q = student / np.maximum(student.sum(), 1e-12)
        q = np.maximum(q, 1e-12)

        difference = (target - q) * student
        gradient = 4.0 * (
            np.diag(difference.sum(axis=1)) - difference
        ) @ embedding

        momentum = 0.5 if iteration < 100 else 0.8
        update = momentum * update - learning_rate * gradient
        embedding = embedding + update
        embedding = embedding - embedding.mean(axis=0, keepdims=True)
    return embedding
