"""Multi-layer perceptron used by prediction heads and several baselines."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..tensor import Tensor, ops
from .layers import Dropout, Linear, ReLU, Sigmoid, Tanh, activation_by_name
from .module import Module, ModuleList

__all__ = ["MLP"]

#: Activation modules whose forward fuses into a single ``ops.linear`` node.
_FUSABLE_ACTIVATIONS = {ReLU: "relu", Sigmoid: "sigmoid", Tanh: "tanh"}


class MLP(Module):
    """A stack of ``Linear -> activation -> dropout`` blocks.

    The prediction layer of Eq. 20 is ``MLP([2 * D, D, 1], activation="relu",
    output_activation=None)`` followed by a sigmoid applied in the loss /
    prediction code.

    Parameters
    ----------
    layer_sizes:
        Sizes including input and output, e.g. ``[256, 128, 1]``.
    activation:
        Name of the hidden activation (``"relu"`` by default).
    output_activation:
        Optional activation applied after the final linear layer.
    dropout:
        Dropout probability applied after each hidden activation.
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        activation: str = "relu",
        output_activation: Optional[str] = None,
        dropout: float = 0.0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        sizes = [int(s) for s in layer_sizes]
        if len(sizes) < 2:
            raise ValueError("MLP needs at least an input and an output size")
        self.layer_sizes = sizes
        self.linears = ModuleList(
            [Linear(sizes[i], sizes[i + 1], bias=bias, rng=rng) for i in range(len(sizes) - 1)]
        )
        self.hidden_activation = activation_by_name(activation)
        self.output_activation = (
            activation_by_name(output_activation) if output_activation else None
        )
        self.dropout = Dropout(dropout, rng=rng)
        self._fused_activation = _FUSABLE_ACTIVATIONS.get(type(self.hidden_activation))

    def forward(self, x: Tensor) -> Tensor:
        last = len(self.linears) - 1
        fused = self._fused_activation if isinstance(
            x,
            Tensor,
        ) and x.data.ndim == 2 else None
        for index, linear in enumerate(self.linears):
            if index < last:
                if fused is not None:
                    x = ops.linear(x, linear.weight, linear.bias, activation=fused)
                else:
                    x = self.hidden_activation(linear(x))
                x = self.dropout(x)
            else:
                x = linear(x)
        if self.output_activation is not None:
            x = self.output_activation(x)
        return x

    def __repr__(self) -> str:
        return f"MLP(layer_sizes={self.layer_sizes})"
