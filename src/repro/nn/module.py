"""Module / Parameter abstractions mirroring a minimal ``torch.nn`` API.

A :class:`Module` owns :class:`Parameter` tensors and child modules, exposes
them through :meth:`parameters` / :meth:`named_parameters`, and supports
``train`` / ``eval`` mode switching plus state-dict style (de)serialisation.
Every model in :mod:`repro.core` and :mod:`repro.baselines` is built on it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..tensor import Tensor

__all__ = ["ModelCapabilities", "Parameter", "Module", "ModuleList", "Sequential"]


@dataclass(frozen=True)
class ModelCapabilities:
    """Declared execution capabilities of a model (no ``hasattr`` probing).

    Consumers — the trainer, the sharded executors and the serving tier —
    branch on these flags instead of probing for method names, so a model
    states explicitly which optional protocols it implements:

    * ``encode_match_split`` — the model factors its forward into
      ``encode_representations`` (per-user encoder outputs) and
      ``match_representations`` (the matching/complementing stages) and
      scores representation rows via ``score_pairs``.  This is the boundary
      the pool-sharded executor exchanges activations across and the
      serving tier persists as its representation store.
    * ``sharding`` — the model decomposes a training step into per-shard
      losses (``compute_shard_loss``) that sum to the full-batch loss.
    * ``matching_pools`` — the model draws per-step matching pools from its
      own rng (``sample_step_pools``), which the sharded executors must
      draw parent-side so retries never perturb the rng stream.
    * ``pool_exchange`` — the model can partition its pool closure across
      shards (``plan_pool_exchange`` / ``exchange_table_spec`` /
      ``exchange_plane_hints``).
    * ``subgraph_sampling`` — the model supports restricted k-hop training
      forwards (``configure_subgraph_sampling``).
    """

    encode_match_split: bool = False
    sharding: bool = False
    matching_pools: bool = False
    pool_exchange: bool = False
    subgraph_sampling: bool = False


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as trainable by its owning module."""

    def __init__(self, data, requires_grad: bool = True) -> None:
        super().__init__(data, requires_grad=requires_grad)


class Module:
    """Base class for all neural-network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes inside ``__init__``; they are picked up automatically for
    parameter iteration, gradient zeroing and state-dict export.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # attribute management
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, parameter: Parameter) -> None:
        """Explicitly register ``parameter`` under ``name``."""
        self._parameters[name] = parameter
        object.__setattr__(self, name, parameter)

    def add_module(self, name: str, module: "Module") -> None:
        """Explicitly register a child ``module`` under ``name``."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # parameter iteration
    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """Return all trainable parameters of this module and its children."""
        return [parameter for _, parameter in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs, depth first."""
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(qualified_name, module)`` pairs including ``self``."""
        yield (prefix.rstrip("."), self)
        for child_name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{child_name}.")

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return int(sum(parameter.size for parameter in self.parameters()))

    # ------------------------------------------------------------------
    # capability declaration
    # ------------------------------------------------------------------
    def capabilities(self) -> ModelCapabilities:
        """Declared optional-protocol support; all off unless overridden."""
        return ModelCapabilities()

    def on_epoch_start(self, epoch: int) -> None:
        """Training-engine epoch hook; the default model has no epoch state."""

    # ------------------------------------------------------------------
    # training state
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects e.g. dropout)."""
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        """Switch to evaluation mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    # ------------------------------------------------------------------
    # state dict
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat name -> array copy of all parameters."""
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter values from :meth:`state_dict` output."""
        own = dict(self.named_parameters())
        missing = [name for name in own if name not in state]
        unexpected = [name for name in state if name not in own]
        if strict and (missing or unexpected):
            raise KeyError(
                f"state_dict mismatch: missing={missing}, unexpected={unexpected}"
            )
        for name, parameter in own.items():
            if name in state:
                # Cast into the parameter's storage dtype (the engine dtype
                # at construction time) so float32-mode models stay float32.
                value = np.asarray(state[name], dtype=parameter.data.dtype)
                if value.shape != parameter.data.shape:
                    raise ValueError(
                        f"shape mismatch for '{name}': "
                        f"expected {parameter.data.shape}, got {value.shape}"
                    )
                parameter.data = value.copy()

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError("Module subclasses must implement forward()")

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_repr = ", ".join(self._modules.keys())
        return f"{type(self).__name__}({child_repr})"


class ModuleList(Module):
    """A list container whose elements are registered as child modules."""

    def __init__(self, modules: Optional[List[Module]] = None) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._items)), module)
        self._items.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container and cannot be called directly")


class Sequential(Module):
    """Chain modules, feeding each output into the next module's input."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules:
            self.add_module(str(len(self._items)), module)
            self._items.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def forward(self, x):
        for module in self._items:
            x = module(x)
        return x
