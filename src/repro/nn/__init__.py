"""Neural-network building blocks on top of :mod:`repro.tensor`."""

from . import init, losses
from .gating import CrossMix, FineGrainedGate
from .serialization import Checkpoint, load_module, save_module
from .layers import (
    Dropout,
    Embedding,
    Identity,
    Linear,
    ReLU,
    Sigmoid,
    Softplus,
    Tanh,
    activation_by_name,
    index_validation,
    index_validation_enabled,
    set_index_validation,
)
from .mlp import MLP
from .module import ModelCapabilities, Module, ModuleList, Parameter, Sequential

__all__ = [
    "init",
    "losses",
    "ModelCapabilities",
    "Module",
    "ModuleList",
    "Sequential",
    "Parameter",
    "Linear",
    "Embedding",
    "Dropout",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Softplus",
    "Identity",
    "activation_by_name",
    "index_validation",
    "index_validation_enabled",
    "set_index_validation",
    "MLP",
    "FineGrainedGate",
    "CrossMix",
    "save_module",
    "load_module",
    "Checkpoint",
]
