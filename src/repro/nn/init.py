"""Parameter initialisation schemes.

The paper does not specify initialisation beyond standard practice; we follow
the PyTorch defaults for the corresponding layer types (Xavier/Glorot for
linear transformations, scaled normal for embeddings, zeros for biases).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..tensor import get_rng

__all__ = [
    "zeros",
    "ones",
    "normal",
    "uniform",
    "xavier_uniform",
    "xavier_normal",
    "kaiming_uniform",
    "embedding_normal",
]


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape, dtype=np.float64)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    """All-one initialisation (gains)."""
    return np.ones(shape, dtype=np.float64)


def normal(
    shape: Tuple[int, ...],
    std: float = 0.01,
    mean: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Gaussian initialisation with the given mean and standard deviation."""
    return get_rng(rng).normal(mean, std, size=shape)


def uniform(
    shape: Tuple[int, ...],
    low: float = -0.05,
    high: float = 0.05,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Uniform initialisation in ``[low, high)``."""
    return get_rng(rng).uniform(low, high, size=shape)


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) < 2:
        fan = int(shape[0]) if shape else 1
        return fan, fan
    fan_in, fan_out = int(shape[0]), int(shape[1])
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return fan_in * receptive, fan_out * receptive


def xavier_uniform(
    shape: Tuple[int, ...],
    gain: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Glorot uniform initialisation, the default for linear layers."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return get_rng(rng).uniform(-bound, bound, size=shape)


def xavier_normal(
    shape: Tuple[int, ...],
    gain: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Glorot normal initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return get_rng(rng).normal(0.0, std, size=shape)


def kaiming_uniform(
    shape: Tuple[int, ...],
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """He uniform initialisation, suited to ReLU stacks."""
    fan_in, _ = _fan_in_out(shape)
    bound = np.sqrt(6.0 / max(fan_in, 1))
    return get_rng(rng).uniform(-bound, bound, size=shape)


def embedding_normal(
    shape: Tuple[int, ...],
    std: float = 0.1,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Scaled-normal initialisation used for the user/item look-up tables (Eq. 1)."""
    return get_rng(rng).normal(0.0, std, size=shape)
