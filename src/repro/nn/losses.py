"""Loss functions used across the reproduction.

Binary cross-entropy (Eq. 21) is the workhorse for both the companion
objectives (Eq. 22) and the final prediction losses (Eq. 23).  The BPR
pairwise loss is required by the BPR baseline.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..tensor import Tensor, as_tensor, ops

__all__ = [
    "binary_cross_entropy",
    "binary_cross_entropy_with_logits",
    "bpr_loss",
    "mse_loss",
    "l2_regularization",
]

_EPS = 1e-7


def binary_cross_entropy(
    predictions: Tensor,
    targets: Union[Tensor, np.ndarray],
    weight: Optional[float] = None,
    reduction: str = "mean",
) -> Tensor:
    """BCE of Eq. 21 on probabilities already passed through a sigmoid.

    Constant targets (the overwhelmingly common case — labels) take the
    fused single-node kernel; differentiable targets fall back to the
    composed op chain so their gradient still flows.
    """
    predictions = as_tensor(predictions)
    if not (isinstance(targets, Tensor) and targets.requires_grad):
        if weight is None:
            return ops.binary_cross_entropy_probs(
                predictions, targets, reduction=reduction, eps=_EPS
            )
        loss = ops.binary_cross_entropy_probs(
            predictions, targets, reduction="none", eps=_EPS
        )
        return _reduce(loss * float(weight), reduction)
    targets = as_tensor(targets)
    clipped = ops.clip(predictions, _EPS, 1.0 - _EPS)
    loss = -(targets * ops.log(clipped) + (1.0 - targets) * ops.log(1.0 - clipped))
    if weight is not None:
        loss = loss * float(weight)
    return _reduce(loss, reduction)


def binary_cross_entropy_with_logits(
    logits: Tensor,
    targets: Union[Tensor, np.ndarray],
    reduction: str = "mean",
) -> Tensor:
    """Numerically stable BCE taking raw logits."""
    logits = as_tensor(logits)
    targets = as_tensor(targets)
    # log(1 + exp(-|x|)) + max(x, 0) - x * y
    loss = ops.softplus(-1.0 * logits) + logits * (1.0 - targets)
    return _reduce(loss, reduction)


def bpr_loss(
    positive_scores: Tensor,
    negative_scores: Tensor,
    reduction: str = "mean",
) -> Tensor:
    """Bayesian personalised ranking loss: ``-log sigmoid(pos - neg)``."""
    diff = as_tensor(positive_scores) - as_tensor(negative_scores)
    loss = ops.softplus(-1.0 * diff)
    return _reduce(loss, reduction)


def mse_loss(
    predictions: Tensor,
    targets: Union[Tensor, np.ndarray],
    reduction: str = "mean",
) -> Tensor:
    """Mean squared error, used by DML's metric-learning regulariser."""
    diff = as_tensor(predictions) - as_tensor(targets)
    loss = diff * diff
    return _reduce(loss, reduction)


def l2_regularization(parameters, coefficient: float) -> Tensor:
    """Sum of squared parameter norms scaled by ``coefficient``."""
    total: Optional[Tensor] = None
    for parameter in parameters:
        term = (parameter * parameter).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total * float(coefficient)


def _reduce(loss: Tensor, reduction: str) -> Tensor:
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    if reduction == "none":
        return loss
    raise ValueError(f"unknown reduction '{reduction}'")
