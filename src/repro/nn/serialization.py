"""Model checkpointing: save/load module parameters as ``.npz`` archives."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from .module import Module

__all__ = ["save_module", "load_module", "Checkpoint"]


def save_module(
    module: Module,
    path: Union[str, Path],
    metadata: Optional[Dict] = None,
) -> Path:
    """Write ``module.state_dict()`` (plus optional JSON metadata) to ``path``."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)

    state = module.state_dict()
    arrays = {f"param::{name}": value for name, value in state.items()}
    header = json.dumps(metadata or {})
    arrays["metadata"] = np.frombuffer(header.encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(path, **arrays)
    return path


def load_module(module: Module, path: Union[str, Path], strict: bool = True) -> Dict:
    """Load parameters saved by :func:`save_module` into ``module``.

    Returns the metadata dictionary stored alongside the parameters.
    """
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(".npz")
    if not path.exists():
        raise FileNotFoundError(f"checkpoint not found: {path}")

    with np.load(path) as archive:
        metadata = json.loads(
            bytes(archive["metadata"].tobytes()).decode("utf-8") or "{}",
        )
        state = {
            key[len("param::"):]: archive[key]
            for key in archive.files
            if key.startswith("param::")
        }
    module.load_state_dict(state, strict=strict)
    return metadata


class Checkpoint:
    """Track the best model state seen so far according to a scalar score."""

    def __init__(self, path: Union[str, Path], higher_is_better: bool = True) -> None:
        self.path = Path(path)
        self.higher_is_better = bool(higher_is_better)
        self.best_score: Optional[float] = None

    def update(
        self,
        module: Module,
        score: float,
        metadata: Optional[Dict] = None,
    ) -> bool:
        """Persist the module if ``score`` improves on the best seen; returns whether it did."""
        improved = (
            self.best_score is None
            or (self.higher_is_better and score > self.best_score)
            or (not self.higher_is_better and score < self.best_score)
        )
        if improved:
            self.best_score = float(score)
            payload = dict(metadata or {})
            payload["score"] = float(score)
            save_module(module, self.path, payload)
        return improved

    def restore(self, module: Module) -> Dict:
        """Load the best checkpoint back into ``module``."""
        return load_module(module, self.path)
