"""Fine-grained gating fusion used by both node-matching components.

Equations 10 and 16 of the paper share the same structure: two message
vectors are fused through a sigmoid gate computed from both inputs, followed
by a tanh non-linearity::

    H   = sigmoid(a W_a + b_a  +  b W_b + b_b)
    out = tanh((1 - H) * a + H * b)

The intra node matching component instantiates it with (head message, tail
message); the inter node matching component with (overlapped-fused state,
non-overlapped message).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, ops
from .layers import Linear
from .module import Module

__all__ = ["FineGrainedGate", "CrossMix"]


class FineGrainedGate(Module):
    """Gated fusion of two equally-shaped message tensors (Eq. 10 / Eq. 16)."""

    def __init__(self, dim: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if dim <= 0:
            raise ValueError("gate dimension must be positive")
        self.dim = int(dim)
        self.first_proj = Linear(dim, dim, rng=rng)
        self.second_proj = Linear(dim, dim, rng=rng)

    def forward(self, first: Tensor, second: Tensor) -> Tensor:
        logits = self.first_proj(first) + self.second_proj(second)
        return ops.gated_tanh_mix(first, second, logits)

    def gate_values(self, first: Tensor, second: Tensor) -> Tensor:
        """Expose the raw gate activations (useful for analysis / tests)."""
        return ops.sigmoid(self.first_proj(first) + self.second_proj(second))


class CrossMix(Module):
    """Cross-domain mixing of Eq. 15.

    ``u_g3* = u_g2 W_cross^Z + u_self (1 - W_cross^Zbar)`` — a pair of square
    transformation matrices shared between the two domains, one per domain.
    The module owns a single matrix; the NMCDR model holds one per domain and
    wires them in the crossed pattern of Eq. 15.
    """

    def __init__(self, dim: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.dim = int(dim)
        self.transform = Linear(dim, dim, bias=False, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.transform(x)

    def complement(self, x: Tensor) -> Tensor:
        """Apply ``x (I - W)`` — the ``(1 - W_cross)`` factor of Eq. 15."""
        return x - self.transform(x)
