"""Core layers: linear transformations, embeddings, dropout and activations."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Sequence, Union

import numpy as np

from ..tensor import Tensor, ops
from ..tensor.random import get_rng
from . import init
from .module import Module, Parameter

__all__ = [
    "Linear",
    "Embedding",
    "Dropout",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Softplus",
    "Identity",
    "activation_by_name",
    "set_index_validation",
    "index_validation_enabled",
    "index_validation",
]

#: Debug flag controlling the O(n) bounds scan in :meth:`Embedding.forward`.
#: Off by default: the dataloader and graph builders already validate their
#: index arrays, and numpy still raises for out-of-range *positive* indices.
#: Enable it when debugging a new data path (it additionally rejects the
#: negative indices numpy would silently wrap).
_VALIDATE_INDICES = False


def set_index_validation(enabled: bool) -> bool:
    """Toggle the embedding index bounds scan; returns the previous setting."""
    global _VALIDATE_INDICES
    previous = _VALIDATE_INDICES
    _VALIDATE_INDICES = bool(enabled)
    return previous


def index_validation_enabled() -> bool:
    return _VALIDATE_INDICES


@contextmanager
def index_validation(enabled: bool = True) -> Iterator[None]:
    """Context manager that temporarily toggles the embedding bounds scan."""
    previous = set_index_validation(enabled)
    try:
        yield
    finally:
        set_index_validation(previous)


class Linear(Module):
    """Affine transformation ``y = x W + b``.

    Weight layout is ``(in_features, out_features)`` so model code reads like
    the paper's equations (row vectors times matrices, e.g. Eq. 3, 8, 13).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear requires strictly positive feature sizes")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight = Parameter(
            init.xavier_uniform((in_features, out_features), rng=rng),
        )
        self.bias: Optional[Parameter]
        if bias:
            self.bias = Parameter(init.zeros((out_features,)))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        if isinstance(x, Tensor) and x.data.ndim == 2:
            return ops.linear(x, self.weight, self.bias)
        out = ops.matmul(x, self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"Linear(in_features={self.in_features}, out_features={self.out_features}, "
            f"bias={self.bias is not None})"
        )


class Embedding(Module):
    """Dense look-up table, the ``E^Z`` matrix of Eq. 1.

    ``forward`` gathers the rows indexed by an integer array; the backward
    pass scatter-adds gradients for repeated indices.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        std: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError("Embedding requires strictly positive sizes")
        self.num_embeddings = int(num_embeddings)
        self.embedding_dim = int(embedding_dim)
        self.weight = Parameter(
            init.embedding_normal((num_embeddings, embedding_dim), std=std, rng=rng),
        )

    def forward(self, indices: Union[np.ndarray, Sequence[int]]) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        # The O(n) min/max scan is redundant for indices the dataloader has
        # already validated, so it only runs under the debug flag (numpy
        # itself still rejects out-of-range positive indices).
        if (
            _VALIDATE_INDICES
            and indices.size
            and (indices.min() < 0 or indices.max() >= self.num_embeddings)
        ):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"min={indices.min() if indices.size else None}, "
                f"max={indices.max() if indices.size else None}"
            )
        return ops.gather_rows(self.weight, indices)

    def all(self) -> Tensor:
        """Return the whole table as a differentiable tensor."""
        return self.weight

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"


class Dropout(Module):
    """Inverted dropout; a no-op in evaluation mode."""

    def __init__(
        self,
        p: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = get_rng(self._rng).random(x.shape) < keep
        return ops.dropout_mask_apply(x, mask, 1.0 / keep)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.relu(x)


class Sigmoid(Module):
    """Logistic activation."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.sigmoid(x)


class Tanh(Module):
    """Hyperbolic-tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.tanh(x)


class Softplus(Module):
    """Smooth ReLU approximation used in the stability analysis (Sec. II.H)."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.softplus(x)


class Identity(Module):
    """Pass-through module, handy for optional components."""

    def forward(self, x: Tensor) -> Tensor:
        return x


_ACTIVATIONS: dict = {
    "relu": ReLU,
    "sigmoid": Sigmoid,
    "tanh": Tanh,
    "softplus": Softplus,
    "identity": Identity,
    "none": Identity,
}


def activation_by_name(name: str) -> Module:
    """Instantiate an activation module from its lowercase name."""
    key = name.lower()
    if key not in _ACTIVATIONS:
        raise KeyError(f"unknown activation '{name}'; known: {sorted(_ACTIVATIONS)}")
    return _ACTIVATIONS[key]()
