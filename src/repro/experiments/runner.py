"""Scenario runner: train a set of models on one CDR configuration and compare.

This is the workhorse used by every table/figure bench.  Given a scenario
name, an overlap ratio and/or density ratio and a list of model names, it
generates the data, builds the shared :class:`CDRTask`, trains every model
with the same trainer configuration and returns per-model, per-domain ranking
metrics.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..baselines import build_model
from ..core import CDRTask, CDRTrainer, NMCDRConfig, TrainerConfig, build_task
from ..data import CDRDataset, load_scenario, preprocess_scenario

__all__ = [
    "ExperimentSettings",
    "ModelResult",
    "ScenarioResult",
    "run_scenario",
    "fast_mode",
]


def fast_mode() -> bool:
    """Whether the benches should run in reduced "smoke" mode.

    Controlled by the ``REPRO_FULL`` environment variable: set it to ``1`` to
    run the larger configuration (more epochs, more models, all sweep points).
    The default is the fast mode so ``pytest benchmarks/`` finishes in minutes.
    """
    return os.environ.get("REPRO_FULL", "0") != "1"


@dataclass
class ExperimentSettings:
    """Shared knobs of a table/figure experiment."""

    scenario: str
    scale: float = 0.6
    overlap_ratio: Optional[float] = None
    density_ratio: Optional[float] = None
    embedding_dim: int = 32
    num_epochs: int = 12
    batch_size: int = 256
    learning_rate: float = 5e-3
    num_eval_negatives: int = 99
    min_interactions: int = 3
    head_threshold: int = 7
    seed: int = 7

    def trainer_config(self) -> TrainerConfig:
        return TrainerConfig(
            num_epochs=self.num_epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            num_eval_negatives=self.num_eval_negatives,
            seed=self.seed,
        )

    def nmcdr_config(self) -> NMCDRConfig:
        return NMCDRConfig(
            embedding_dim=self.embedding_dim,
            head_threshold=self.head_threshold,
            seed=self.seed,
        )


@dataclass
class ModelResult:
    """Metrics and bookkeeping for one trained model."""

    model_name: str
    metrics: Dict[str, Dict[str, float]]
    final_loss: float
    num_parameters: int
    train_seconds_per_batch: float
    wall_clock_seconds: float
    #: Producer-side batch-preparation cost per step (epoch materialisation,
    #: negative sampling, slicing) — the wall cost the step timing above
    #: deliberately excludes.
    data_seconds_per_batch: float = 0.0
    #: Wall-clock seconds of the fit loop itself (data + steps + eval).
    fit_wall_seconds: float = 0.0

    def metric(self, domain_key: str, name: str) -> float:
        return self.metrics.get(domain_key, {}).get(name, float("nan"))


@dataclass
class ScenarioResult:
    """All model results for one scenario configuration."""

    settings: ExperimentSettings
    task_summary: Dict
    results: Dict[str, ModelResult] = field(default_factory=dict)

    def best_model(self, domain_key: str, metric: str = "ndcg@10") -> str:
        scored = {
            name: result.metric(domain_key, metric) for name, result in self.results.items()
        }
        return max(scored, key=scored.get)

    def improvement_over_best_baseline(
        self,
        domain_key: str,
        metric: str = "ndcg@10",
    ) -> float:
        """NMCDR's relative improvement (%) over the best non-NMCDR model."""
        if "NMCDR" not in self.results:
            raise KeyError("scenario was run without NMCDR")
        ours = self.results["NMCDR"].metric(domain_key, metric)
        baselines = [
            result.metric(domain_key, metric)
            for name, result in self.results.items()
            if not name.startswith("NMCDR")
        ]
        if not baselines:
            return float("nan")
        best = max(baselines)
        if best <= 0:
            return float("inf")
        return 100.0 * (ours - best) / best


def prepare_dataset(settings: ExperimentSettings) -> CDRDataset:
    """Generate, preprocess and apply the Ku / Ds manipulations."""
    dataset = load_scenario(settings.scenario, scale=settings.scale, seed=settings.seed)
    dataset = preprocess_scenario(dataset, min_interactions=settings.min_interactions)
    rng = np.random.default_rng(settings.seed)
    if settings.overlap_ratio is not None:
        dataset = dataset.with_overlap_ratio(settings.overlap_ratio, rng=rng)
    if settings.density_ratio is not None:
        dataset = dataset.with_density(settings.density_ratio, rng=rng)
    return dataset


def run_scenario(
    settings: ExperimentSettings,
    model_names: Sequence[str],
    task: Optional[CDRTask] = None,
) -> ScenarioResult:
    """Train and evaluate every requested model on one scenario configuration."""
    if task is None:
        dataset = prepare_dataset(settings)
        task = build_task(dataset, head_threshold=settings.head_threshold)
    trainer_config = settings.trainer_config()
    scenario_result = ScenarioResult(settings=settings, task_summary=task.summary())

    for name in model_names:
        started = time.perf_counter()
        model = build_model(
            name,
            task,
            embedding_dim=settings.embedding_dim,
            seed=settings.seed,
            nmcdr_config=settings.nmcdr_config(),
        )
        trainer = CDRTrainer(model, task, trainer_config)
        history = trainer.fit()
        metrics = trainer.evaluate(subset="test")
        scenario_result.results[name] = ModelResult(
            model_name=name,
            metrics=metrics,
            final_loss=history.final_loss,
            num_parameters=model.num_parameters(),
            train_seconds_per_batch=history.train_seconds_per_batch,
            wall_clock_seconds=time.perf_counter() - started,
            data_seconds_per_batch=history.data_seconds_per_batch,
            fit_wall_seconds=history.fit_wall_seconds,
        )
    return scenario_result
