"""Ablation study — Table IX of the paper.

Trains the full NMCDR model and its four ablation variants (w/o-Igm, w/o-Cgm,
w/o-Inc, w/o-Sup) on one scenario at a fixed overlap ratio (50% in the paper)
and compares per-domain NDCG@10 / HR@10.  The paper's qualitative findings:

* removing any component hurts;
* the inter node matching component (Cgm) contributes the most;
* the companion supervision (Sup) contributes slightly more than Igm and Inc.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence

from .paper_reference import TABLE9_ABLATION
from .reporting import format_metric_rows
from .runner import ExperimentSettings, ScenarioResult, run_scenario

__all__ = ["AblationResult", "run_ablation", "ABLATION_MODEL_NAMES"]

#: Registry names of the ablation variants (order matches Table IX columns).
ABLATION_MODEL_NAMES = (
    "NMCDR/w/o-Igm",
    "NMCDR/w/o-Cgm",
    "NMCDR/w/o-Inc",
    "NMCDR/w/o-Sup",
    "NMCDR",
)


@dataclass
class AblationResult:
    """Measured ablation metrics for one scenario."""

    scenario: str
    scenario_result: ScenarioResult

    def variant_metric(
        self,
        variant: str,
        domain_key: str,
        metric: str = "ndcg@10",
    ) -> float:
        return self.scenario_result.results[variant].metric(domain_key, metric)

    def full_beats_variant(
        self,
        variant: str,
        domain_key: str,
        metric: str = "ndcg@10",
    ) -> bool:
        return self.variant_metric("NMCDR", domain_key, metric) >= self.variant_metric(
            variant, domain_key, metric
        )

    def component_contributions(
        self,
        domain_key: str,
        metric: str = "ndcg@10",
    ) -> Dict[str, float]:
        """Drop in the metric when each component is removed (larger = more important)."""
        full = self.variant_metric("NMCDR", domain_key, metric)
        return {
            variant: full - self.variant_metric(variant, domain_key, metric)
            for variant in self.scenario_result.results
            if variant != "NMCDR"
        }

    def format_table(self, domain_key: str) -> str:
        domain_name = (
            self.scenario_result.task_summary["domain_a"]["name"]
            if domain_key == "a"
            else self.scenario_result.task_summary["domain_b"]["name"]
        )
        rows = {
            variant: {
                "ndcg@10": self.variant_metric(variant, domain_key, "ndcg@10"),
                "hr@10": self.variant_metric(variant, domain_key, "hr@10"),
            }
            for variant in ABLATION_MODEL_NAMES
            if variant in self.scenario_result.results
        }
        title = f"Ablation on {self.scenario} — {domain_name} (measured)"
        table = format_metric_rows(rows, title=title)
        if domain_name in TABLE9_ABLATION:
            paper_rows = {
                f"paper {variant}": {"ndcg@10": values[0], "hr@10": values[1]}
                for variant, values in TABLE9_ABLATION[domain_name].items()
            }
            table += "\n" + format_metric_rows(paper_rows, title="(paper values, %)")
        return table


def run_ablation(
    scenario: str,
    overlap_ratio: float = 0.5,
    settings: Optional[ExperimentSettings] = None,
    model_names: Sequence[str] = ABLATION_MODEL_NAMES,
) -> AblationResult:
    """Run the Table IX ablation for one scenario."""
    base = settings or ExperimentSettings(scenario=scenario)
    point_settings = replace(base, scenario=scenario, overlap_ratio=overlap_ratio)
    return AblationResult(
        scenario=scenario,
        scenario_result=run_scenario(point_settings, model_names),
    )
