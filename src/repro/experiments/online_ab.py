"""Simulated online A/B test — Section III.C (Tables VII and VIII).

The paper deploys NMCDR and three baselines on MYbank's serving platform and
measures CVR over three financial domains ("Loan", "Fund", "Account").  That
environment is proprietary, so this module builds the closest synthetic
equivalent that exercises the same pipeline:

1. an :class:`OnlineWorld` with a shared latent preference model over a user
   population that partially overlaps across three domains, plus logged
   interactions used for offline training;
2. offline training of each serving group's model on the logged data (the
   control group is a popularity ranker, mirroring a model-free holdout);
3. an impression simulator: users arrive according to their activity, the
   serving policy picks one item from a random candidate slate, and a
   conversion is sampled from the ground-truth preference model calibrated so
   the control group's CVR sits near the paper's control numbers;
4. CVR per group per domain, the Table VIII layout.

Common random numbers (the same users and slates for every group) are used so
group differences reflect policy quality rather than sampling noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..baselines import build_model
from ..core import CDRTrainer, TrainerConfig, build_task
from ..data.schema import CDRDataset, DomainData
from ..data.synthetic import DomainSpec, generate_domain
from ..metrics import conversion_rate
from ..serve import ScoreRequest, Scorer
from .paper_reference import TABLE8_ONLINE_AB

__all__ = [
    "OnlineDomainSpec",
    "OnlineWorld",
    "OnlineABResult",
    "build_online_world",
    "run_online_ab",
    "DEFAULT_AB_GROUPS",
]

#: Serving groups of Table VIII (Control plus the deployed models).
DEFAULT_AB_GROUPS = ("Control", "MMoE", "PLE", "DML", "NMCDR")


@dataclass
class OnlineDomainSpec:
    """Size and base conversion rate of one online domain."""

    name: str
    num_users: int
    num_items: int
    base_cvr: float
    mean_interactions_per_user: float = 8.0


DEFAULT_ONLINE_DOMAINS = (
    OnlineDomainSpec("Loan", 400, 60, base_cvr=0.105),
    OnlineDomainSpec("Fund", 260, 45, base_cvr=0.061),
    OnlineDomainSpec("Account", 320, 55, base_cvr=0.019),
)


@dataclass
class OnlineWorld:
    """Ground-truth preference model plus logged interactions per domain."""

    specs: List[OnlineDomainSpec]
    domains: Dict[str, DomainData]
    user_latents: Dict[str, np.ndarray]
    item_latents: Dict[str, np.ndarray]
    preference_lift: float = 0.45

    def conversion_probability(self, domain_name: str, user: int, item: int) -> float:
        """Ground-truth probability that ``user`` converts on ``item``."""
        spec = next(spec for spec in self.specs if spec.name == domain_name)
        preference = float(
            self.user_latents[domain_name][user] @ self.item_latents[domain_name][item]
        )
        scale = np.sqrt(self.user_latents[domain_name].shape[1])
        normalised = np.tanh(preference / scale)
        probability = spec.base_cvr * (1.0 + self.preference_lift * normalised)
        return float(np.clip(probability, 0.0, 0.95))

    def item_popularity(self, domain_name: str) -> np.ndarray:
        domain = self.domains[domain_name]
        return np.bincount(domain.items, minlength=domain.num_items).astype(np.float64)


def build_online_world(
    specs: Sequence[OnlineDomainSpec] = DEFAULT_ONLINE_DOMAINS,
    overlap_fraction: float = 0.25,
    latent_dim: int = 8,
    seed: int = 11,
) -> OnlineWorld:
    """Create the three-domain world with partially overlapping users."""
    rng = np.random.default_rng(seed)
    specs = list(specs)
    total_population = int(sum(spec.num_users for spec in specs))
    population_latents = rng.normal(0.0, 1.0, size=(total_population, latent_dim))

    domains: Dict[str, DomainData] = {}
    user_latents: Dict[str, np.ndarray] = {}
    item_latents: Dict[str, np.ndarray] = {}

    # The first domain anchors the shared population; every other domain draws
    # ``overlap_fraction`` of its users from the anchor's population and the
    # rest from fresh global identities.
    anchor_ids = np.arange(specs[0].num_users)
    next_global = specs[0].num_users
    for index, spec in enumerate(specs):
        if index == 0:
            global_ids = anchor_ids.copy()
        else:
            overlap_count = int(round(overlap_fraction * spec.num_users))
            overlapped = rng.choice(anchor_ids, size=overlap_count, replace=False)
            fresh = np.arange(next_global, next_global + spec.num_users - overlap_count)
            next_global += spec.num_users - overlap_count
            global_ids = np.concatenate([overlapped, fresh])
        latents = population_latents[global_ids % total_population]

        domain_spec = DomainSpec(
            name=spec.name,
            num_users=spec.num_users,
            num_items=spec.num_items,
            mean_interactions_per_user=spec.mean_interactions_per_user,
            min_interactions_per_user=3,
        )
        domain, items = generate_domain(domain_spec, latents, global_ids, rng)
        domains[spec.name] = domain
        user_latents[spec.name] = latents
        item_latents[spec.name] = items

    return OnlineWorld(specs=specs, domains=domains, user_latents=user_latents, item_latents=item_latents)


@dataclass
class OnlineABResult:
    """CVR per serving group and domain, plus the paper's reference numbers."""

    cvr: Dict[str, Dict[str, float]] = field(default_factory=dict)
    impressions_per_domain: int = 0

    def improvement_over_best_baseline(self, domain_name: str) -> float:
        """NMCDR's relative CVR improvement over the best non-control baseline (%)."""
        ours = self.cvr["NMCDR"][domain_name]
        baselines = [
            values[domain_name]
            for group, values in self.cvr.items()
            if group not in ("NMCDR", "Control")
        ]
        if not baselines:
            return float("nan")
        best = max(baselines)
        if best <= 0:
            return float("inf")
        return 100.0 * (ours - best) / best

    def format_table(self) -> str:
        domains = list(next(iter(self.cvr.values())).keys())
        header = f"{'Group':<12}" + "".join(f"{name:>12}" for name in domains)
        lines = [
            f"Online A/B simulation ({self.impressions_per_domain} impressions per domain, CVR %)",
            header,
            "-" * len(header),
        ]
        for group, values in self.cvr.items():
            cells = "".join(f"{values[name] * 100:>12.2f}" for name in domains)
            lines.append(f"{group:<12}{cells}")
        lines.append("")
        lines.append("Paper (Table VIII, CVR %):")
        for group, values in TABLE8_ONLINE_AB.items():
            cells = "".join(f"{values.get(name, float('nan')):>12.2f}" for name in domains)
            lines.append(f"{group:<12}{cells}")
        return "\n".join(lines)


class _PopularityPolicy:
    """Control group: always serve the most popular candidate item."""

    def __init__(self, popularity: np.ndarray) -> None:
        self.popularity = popularity

    def choose(self, user: int, slate: np.ndarray) -> int:
        return int(slate[np.argmax(self.popularity[slate])])


class _ModelPolicy:
    """Serve the candidate the serving tier ranks first.

    Each impression is a top-1 :class:`~repro.serve.ScoreRequest` over the
    slate — the production serving path (representation store for NMCDR,
    micro-batched delegation for the baselines).  ``exact_top_k`` breaks
    ties toward the lowest index, the same winner the historical
    ``np.argmax`` policy picked, so the rewire is numerically unchanged.
    """

    def __init__(self, scorer: Scorer, domain_key: str) -> None:
        self.scorer = scorer
        self.domain_key = domain_key

    def choose(self, user: int, slate: np.ndarray) -> int:
        response = self.scorer.score(
            ScoreRequest(self.domain_key, user, k=1, candidates=slate)
        )
        return int(response.items[0])


def _train_group_models(
    world: OnlineWorld,
    groups: Sequence[str],
    domain_names: Sequence[str],
    trainer_config: TrainerConfig,
    embedding_dim: int,
    seed: int,
) -> Dict[str, Dict[str, Tuple[object, str]]]:
    """Train each group's scorer on domain pairs; returns group -> domain -> (scorer, key).

    The first domain is paired with every other domain (the anchor pattern of
    the paper's platform where "Loan" is the largest domain); the anchor
    domain itself is scored by the first pair's model.  Each trained model is
    wrapped in the serving tier's :class:`~repro.serve.Scorer` —
    ``Scorer.from_model`` builds the representation store with the same
    post-training forward (and rng consumption) the historical
    ``prepare_for_evaluation`` call ran, so impressions are answered from
    store rows with bit-identical scores.
    """
    anchor = domain_names[0]
    policies: Dict[str, Dict[str, Tuple[Scorer, str]]] = {group: {} for group in groups}
    for other in domain_names[1:]:
        dataset = CDRDataset(
            name=f"online_{anchor.lower()}_{other.lower()}",
            domain_a=world.domains[anchor],
            domain_b=world.domains[other],
        )
        task = build_task(dataset)
        for group in groups:
            if group == "Control":
                continue
            model = build_model(group if group != "NMCDR" else "NMCDR", task, embedding_dim=embedding_dim, seed=seed)
            trainer = CDRTrainer(model, task, trainer_config)
            trainer.fit()
            scorer = Scorer.from_model(model, task)
            policies[group][other] = (scorer, "b")
            if anchor not in policies[group]:
                policies[group][anchor] = (scorer, "a")
    return policies


def run_online_ab(
    groups: Sequence[str] = DEFAULT_AB_GROUPS,
    domain_specs: Sequence[OnlineDomainSpec] = DEFAULT_ONLINE_DOMAINS,
    impressions_per_domain: int = 2000,
    slate_size: int = 10,
    num_epochs: int = 8,
    embedding_dim: int = 16,
    seed: int = 11,
) -> OnlineABResult:
    """Run the full offline-train / online-serve simulation (Table VIII)."""
    world = build_online_world(domain_specs, seed=seed)
    domain_names = [spec.name for spec in domain_specs]
    trainer_config = TrainerConfig(
        num_epochs=num_epochs, batch_size=256, learning_rate=5e-3, seed=seed
    )
    model_policies = _train_group_models(
        world, groups, domain_names, trainer_config, embedding_dim, seed
    )

    rng = np.random.default_rng(seed + 1)
    result = OnlineABResult(impressions_per_domain=impressions_per_domain)
    for group in groups:
        result.cvr[group] = {}

    for spec in domain_specs:
        domain = world.domains[spec.name]
        activity = np.bincount(domain.users, minlength=domain.num_users).astype(np.float64)
        activity /= activity.sum()
        # Common random numbers: every group sees the same impression stream.
        impression_users = rng.choice(domain.num_users, size=impressions_per_domain, p=activity)
        slates = rng.integers(0, domain.num_items, size=(impressions_per_domain, slate_size))
        conversion_draws = rng.random(impressions_per_domain)

        popularity = world.item_popularity(spec.name)
        for group in groups:
            if group == "Control":
                policy = _PopularityPolicy(popularity)
            else:
                scorer, domain_key = model_policies[group][spec.name]
                policy = _ModelPolicy(scorer, domain_key)
            conversions = np.zeros(impressions_per_domain)
            for index in range(impressions_per_domain):
                user = int(impression_users[index])
                chosen = policy.choose(user, slates[index])
                probability = world.conversion_probability(spec.name, user, chosen)
                conversions[index] = float(conversion_draws[index] < probability)
            result.cvr[group][spec.name] = conversion_rate(conversions, impressions_per_domain)
    return result
