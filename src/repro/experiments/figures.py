"""Export experiment results as plain CSV so figures can be drawn elsewhere.

No plotting backend ships with the offline environment, so each figure-shaped
result (overlap sweeps, hyper-parameter sensitivity, embedding projections) is
exported as a small CSV file that any external tool can plot.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from .density_sweep import DensitySweepResult
from .hyperparams import HyperparameterSweepResult
from .overlap_sweep import OverlapSweepResult

__all__ = [
    "overlap_sweep_to_csv",
    "density_sweep_to_csv",
    "hyperparameter_sweep_to_csv",
    "projection_to_csv",
    "write_csv",
]


def write_csv(content: str, path: Optional[Union[str, Path]]) -> Optional[Path]:
    """Write CSV ``content`` to ``path`` (created if needed); returns the path."""
    if path is None:
        return None
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(content)
    return path


def overlap_sweep_to_csv(
    sweep: OverlapSweepResult,
    path: Optional[Union[str, Path]] = None,
) -> str:
    """CSV with one row per (model, domain, overlap ratio)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["scenario", "model", "domain", "overlap_ratio", "ndcg@10", "hr@10"],
    )
    for model_name in sweep.model_names:
        for domain_key in ("a", "b"):
            for ratio, (
                ndcg,
                hr,
            ) in zip(sweep.overlap_ratios, sweep.series(model_name, domain_key)):
                writer.writerow(
                    [
                        sweep.scenario,
                        model_name,
                        domain_key,
                        ratio,
                        f"{ndcg:.6f}",
                        f"{hr:.6f}",
                    ],
                )
    content = buffer.getvalue()
    write_csv(content, path)
    return content


def density_sweep_to_csv(
    sweep: DensitySweepResult,
    path: Optional[Union[str, Path]] = None,
) -> str:
    """CSV with one row per (model, domain, density ratio)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["scenario", "model", "domain", "density_ratio", "ndcg@10", "hr@10"],
    )
    for model_name in sweep.model_names:
        for domain_key in ("a", "b"):
            for ratio, (
                ndcg,
                hr,
            ) in zip(sweep.density_ratios, sweep.series(model_name, domain_key)):
                writer.writerow(
                    [
                        sweep.scenario,
                        model_name,
                        domain_key,
                        ratio,
                        f"{ndcg:.6f}",
                        f"{hr:.6f}",
                    ],
                )
    content = buffer.getvalue()
    write_csv(content, path)
    return content


def hyperparameter_sweep_to_csv(
    sweep: HyperparameterSweepResult, path: Optional[Union[str, Path]] = None
) -> str:
    """CSV with one row per swept value (Fig. 3 / Fig. 4 series)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([
        "scenario",
        sweep.parameter_name,
        "ndcg@10_domain_a",
        "ndcg@10_domain_b",
        "hr@10_domain_a",
        "hr@10_domain_b",
        "ndcg@10_avg",
    ])
    ndcg_a = sweep.series("a", "ndcg@10")
    ndcg_b = sweep.series("b", "ndcg@10")
    hr_a = sweep.series("a", "hr@10")
    hr_b = sweep.series("b", "hr@10")
    averaged = sweep.average_series("ndcg@10")
    for index, value in enumerate(sweep.parameter_values):
        writer.writerow(
            [
                sweep.scenario,
                value,
                f"{ndcg_a[index]:.6f}",
                f"{ndcg_b[index]:.6f}",
                f"{hr_a[index]:.6f}",
                f"{hr_b[index]:.6f}",
                f"{averaged[index]:.6f}",
            ]
        )
    content = buffer.getvalue()
    write_csv(content, path)
    return content


def projection_to_csv(
    projection: Dict[str, np.ndarray],
    path: Optional[Union[str, Path]] = None,
) -> str:
    """CSV of a t-SNE projection (Fig. 5): user index, x, y, head flag."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["user_index", "x", "y", "is_head"])
    coordinates = projection["coordinates"]
    for user, (
        x,
        y,
    ), is_head in zip(projection["user_indices"], coordinates, projection["is_head"]):
        writer.writerow([int(user), f"{x:.6f}", f"{y:.6f}", int(bool(is_head))])
    content = buffer.getvalue()
    write_csv(content, path)
    return content
