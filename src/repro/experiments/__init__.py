"""Experiment harness regenerating every table and figure of the paper."""

from . import figures, paper_reference, report
from .ablation import ABLATION_MODEL_NAMES, AblationResult, run_ablation
from .density_sweep import DEFAULT_DENSITY_MODELS, DensitySweepResult, run_density_sweep
from .hyperparams import (
    HyperparameterSweepResult,
    run_head_threshold_sweep,
    run_matching_neighbors_sweep,
)
from .online_ab import (
    DEFAULT_AB_GROUPS,
    OnlineABResult,
    OnlineDomainSpec,
    OnlineWorld,
    build_online_world,
    run_online_ab,
)
from .overlap_sweep import DEFAULT_SWEEP_MODELS, OverlapSweepResult, run_overlap_sweep
from .reporting import (
    format_comparison_table,
    format_key_values,
    format_metric_rows,
    format_overlap_table,
)
from .runner import (
    ExperimentSettings,
    ModelResult,
    ScenarioResult,
    fast_mode,
    prepare_dataset,
    run_scenario,
)

__all__ = [
    "paper_reference",
    "figures",
    "report",
    "ExperimentSettings",
    "ModelResult",
    "ScenarioResult",
    "run_scenario",
    "prepare_dataset",
    "fast_mode",
    "OverlapSweepResult",
    "run_overlap_sweep",
    "DEFAULT_SWEEP_MODELS",
    "DensitySweepResult",
    "run_density_sweep",
    "DEFAULT_DENSITY_MODELS",
    "AblationResult",
    "run_ablation",
    "ABLATION_MODEL_NAMES",
    "HyperparameterSweepResult",
    "run_matching_neighbors_sweep",
    "run_head_threshold_sweep",
    "OnlineABResult",
    "OnlineDomainSpec",
    "OnlineWorld",
    "build_online_world",
    "run_online_ab",
    "DEFAULT_AB_GROUPS",
    "format_overlap_table",
    "format_comparison_table",
    "format_metric_rows",
    "format_key_values",
]
