"""Aggregate the per-experiment bench reports into a single document.

Each benchmark writes a plain-text report under ``benchmarks/results/``; this
module stitches them into one markdown file (one section per experiment, in
paper order) so the complete paper-vs-measured picture can be read or shared
as a single artifact.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

__all__ = [
    "REPORT_ORDER",
    "collect_reports",
    "build_markdown_report",
    "write_markdown_report",
]

#: Display order and titles of the known experiment reports.
REPORT_ORDER = (
    ("table1_statistics", "Table I — dataset statistics"),
    ("table2_music_movie", "Table II — Music–Movie overlap sweep"),
    ("table3_cloth_sport", "Table III — Cloth–Sport overlap sweep"),
    ("table4_phone_elec", "Table IV — Phone–Elec overlap sweep"),
    ("table5_loan_fund", "Table V — Loan–Fund overlap sweep"),
    ("table6_density", "Table VI — data-density sweep"),
    ("table8_online_ab", "Tables VII/VIII — online A/B simulation"),
    ("table9_ablation", "Table IX — component ablation"),
    ("fig3_matching_neighbors", "Fig. 3 — matching-neighbour sensitivity"),
    ("fig4_head_tail_threshold", "Fig. 4 — head/tail threshold sensitivity"),
    ("fig5_embedding_alignment", "Fig. 5 — embedding alignment"),
    ("efficiency", "Sec. III.B.6 — model efficiency"),
    ("stability", "Sec. II.H — stability analysis"),
    ("design_ablations", "Extra — design-choice ablations"),
)


def collect_reports(results_dir: Union[str, Path]) -> Dict[str, str]:
    """Read every ``*.txt`` report in ``results_dir`` keyed by its stem."""
    results_dir = Path(results_dir)
    if not results_dir.exists():
        return {}
    return {path.stem: path.read_text().rstrip() for path in sorted(results_dir.glob("*.txt"))}


def build_markdown_report(
    results_dir: Union[str, Path],
    title: str = "NMCDR reproduction results",
) -> str:
    """Build one markdown document from all available bench reports."""
    reports = collect_reports(results_dir)
    lines: List[str] = [f"# {title}", ""]
    if not reports:
        lines.append("_No bench reports found; run `pytest benchmarks/ --benchmark-only` first._")
        return "\n".join(lines)

    known = {name for name, _ in REPORT_ORDER}
    for name, heading in REPORT_ORDER:
        if name not in reports:
            continue
        lines.extend([f"## {heading}", "", "```", reports[name], "```", ""])
    # Include any extra reports that are not in the canonical list.
    for name in sorted(set(reports) - known):
        lines.extend([f"## {name}", "", "```", reports[name], "```", ""])
    return "\n".join(lines)


def write_markdown_report(
    results_dir: Union[str, Path],
    output_path: Union[str, Path],
    title: str = "NMCDR reproduction results",
) -> Path:
    """Write the aggregated markdown report to ``output_path`` and return the path."""
    output_path = Path(output_path)
    output_path.parent.mkdir(parents=True, exist_ok=True)
    output_path.write_text(build_markdown_report(results_dir, title=title) + "\n")
    return output_path
