"""Reference values reported in the paper.

The reproduction runs on scaled-down synthetic data, so absolute metric values
are not expected to match.  What the benches check and EXPERIMENTS.md records
is the *shape* of each result: who wins, roughly by how much, and how results
move along the swept axis.  The constants below transcribe the paper's key
rows so the bench output can print "paper vs. measured" side by side.

All NDCG/HR numbers are percentages, exactly as printed in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = [
    "OVERLAP_RATIOS",
    "DENSITY_RATIOS",
    "TABLE_SCENARIOS",
    "nmcdr_reference_row",
    "improvement_reference_row",
    "TABLE9_ABLATION",
    "TABLE8_ONLINE_AB",
    "EFFICIENCY_REFERENCE",
    "FIGURE_TRENDS",
]

#: The user overlap ratios Ku swept in Tables II–V.
OVERLAP_RATIOS = (0.001, 0.01, 0.10, 0.50, 0.90)

#: The density ratios Ds swept in Table VI.
DENSITY_RATIOS = (0.10, 0.50, 0.70)

#: Mapping table number -> scenario name used in this repo.
TABLE_SCENARIOS = {
    "table2": "music_movie",
    "table3": "cloth_sport",
    "table4": "phone_elec",
    "table5": "loan_fund",
}

# NMCDR rows of Tables II–V: scenario -> domain -> list of (NDCG@10, HR@10)
# for Ku = 0.1%, 1%, 10%, 50%, 90%.
_NMCDR_ROWS: Dict[str, Dict[str, List[Tuple[float, float]]]] = {
    "music_movie": {
        "Music": [(8.29, 16.28), (8.43, 16.52), (8.50, 17.00), (11.26, 21.58), (12.28, 23.19)],
        "Movie": [(33.39, 50.22), (33.57, 50.67), (33.70, 50.91), (33.96, 51.13), (33.94, 51.12)],
    },
    "cloth_sport": {
        "Cloth": [(8.40, 16.57), (8.50, 16.63), (8.87, 17.73), (9.26, 18.33), (9.54, 19.05)],
        "Sport": [(13.52, 25.36), (13.79, 25.53), (14.06, 26.15), (14.91, 27.54), (15.17, 28.10)],
    },
    "phone_elec": {
        "Phone": [(6.29, 12.27), (6.46, 12.98), (10.82, 20.98), (17.44, 30.87), (19.18, 33.03)],
        "Elec": [(23.49, 37.61), (23.91, 37.84), (24.17, 39.03), (24.45, 39.49), (24.60, 39.84)],
    },
    "loan_fund": {
        "Loan": [(49.47, 69.54), (49.69, 69.84), (49.84, 69.97), (49.89, 69.98), (49.91, 70.06)],
        "Fund": [(25.32, 39.47), (25.69, 39.75), (26.38, 40.46), (35.24, 55.03), (37.29, 58.54)],
    },
}

# "Improvement (%)" rows of Tables II–V (NMCDR over the second-best baseline):
# scenario -> domain -> list of (NDCG improvement %, HR improvement %) per Ku.
_IMPROVEMENT_ROWS: Dict[str, Dict[str, List[Tuple[float, float]]]] = {
    "music_movie": {
        "Music": [(9.08, 8.90), (8.77, 8.47), (2.66, 2.53), (13.85, 7.47), (11.94, 8.82)],
        "Movie": [(4.18, 4.32), (4.19, 4.73), (4.79, 5.19), (5.37, 5.38), (5.47, 5.55)],
    },
    "cloth_sport": {
        "Cloth": [(35.05, 26.78), (28.21, 25.60), (30.63, 28.85), (25.82, 24.02), (25.69, 22.74)],
        "Sport": [(26.24, 25.05), (26.40, 25.52), (26.21, 25.90), (26.46, 24.05), (23.84, 22.39)],
    },
    "phone_elec": {
        "Phone": [(37.93, 30.67), (38.92, 31.38), (31.31, 28.71), (20.19, 19.56), (13.90, 12.39)],
        "Elec": [(14.53, 14.49), (16.06, 14.88), (14.50, 13.76), (12.16, 12.28), (10.26, 11.10)],
    },
    "loan_fund": {
        "Loan": [(1.10, 0.77), (1.07, 0.80), (0.79, 0.29), (0.36, 0.10), (0.12, 0.17)],
        "Fund": [(14.41, 9.37), (11.45, 6.43), (2.09, 3.64), (6.02, 3.21), (1.89, 2.18)],
    },
}


def nmcdr_reference_row(scenario: str, domain_name: str) -> List[Tuple[float, float]]:
    """NMCDR's (NDCG@10, HR@10) per overlap ratio, as reported in the paper."""
    return list(_NMCDR_ROWS[scenario][domain_name])


def improvement_reference_row(
    scenario: str,
    domain_name: str,
) -> List[Tuple[float, float]]:
    """NMCDR's improvement over the second-best baseline per overlap ratio."""
    return list(_IMPROVEMENT_ROWS[scenario][domain_name])


#: Table IX — ablation NDCG@10 / HR@10 at Ku = 50% (domain -> variant -> (ndcg, hr)).
TABLE9_ABLATION: Dict[str, Dict[str, Tuple[float, float]]] = {
    "Music": {
        "w/o-Igm": (10.28, 19.28), "w/o-Cgm": (9.30, 18.78),
        "w/o-Inc": (10.90, 20.89), "w/o-Sup": (9.78, 19.16), "full": (11.26, 21.58),
    },
    "Movie": {
        "w/o-Igm": (32.84, 48.73), "w/o-Cgm": (31.96, 48.01),
        "w/o-Inc": (33.60, 50.48), "w/o-Sup": (32.60, 48.93), "full": (33.96, 51.13),
    },
    "Cloth": {
        "w/o-Igm": (9.14, 17.99), "w/o-Cgm": (7.35, 15.14),
        "w/o-Inc": (8.95, 17.65), "w/o-Sup": (8.38, 17.59), "full": (9.26, 18.33),
    },
    "Sport": {
        "w/o-Igm": (14.75, 26.94), "w/o-Cgm": (13.02, 24.35),
        "w/o-Inc": (14.60, 26.86), "w/o-Sup": (13.98, 27.04), "full": (14.91, 27.54),
    },
    "Phone": {
        "w/o-Igm": (16.50, 29.47), "w/o-Cgm": (14.42, 25.37),
        "w/o-Inc": (17.05, 29.70), "w/o-Sup": (17.09, 29.82), "full": (17.44, 30.87),
    },
    "Elec": {
        "w/o-Igm": (23.75, 37.95), "w/o-Cgm": (20.82, 33.87),
        "w/o-Inc": (24.10, 38.26), "w/o-Sup": (24.13, 38.43), "full": (24.45, 39.49),
    },
    "Loan": {
        "w/o-Igm": (49.69, 69.83), "w/o-Cgm": (49.40, 69.32),
        "w/o-Inc": (49.76, 69.89), "w/o-Sup": (49.67, 69.79), "full": (49.89, 69.98),
    },
    "Fund": {
        "w/o-Igm": (34.84, 54.84), "w/o-Cgm": (34.77, 54.35),
        "w/o-Inc": (35.10, 54.91), "w/o-Sup": (34.90, 54.80), "full": (35.24, 55.03),
    },
}

#: Table VIII — online A/B CVR (%) per serving group and domain.
TABLE8_ONLINE_AB: Dict[str, Dict[str, float]] = {
    "Control": {"Loan": 10.50, "Fund": 6.12, "Account": 1.89},
    "MMoE": {"Loan": 12.14, "Fund": 6.45, "Account": 2.11},
    "PLE": {"Loan": 12.57, "Fund": 6.69, "Account": 2.27},
    "DML": {"Loan": 12.93, "Fund": 6.81, "Account": 2.43},
    "NMCDR": {"Loan": 13.81, "Fund": 7.13, "Account": 2.59},
}

#: Section III.B.6 — parameter counts (millions) and per-batch timings (seconds).
EFFICIENCY_REFERENCE: Dict[str, Dict[str, float]] = {
    "PLE": {"parameters_m": 0.16, "train_s_per_batch": 2.96e-4, "test_s_per_batch": 1.84e-4},
    "MiNet": {"parameters_m": 0.78, "train_s_per_batch": 7.65e-4, "test_s_per_batch": 4.56e-4},
    "HeroGraph": {"parameters_m": 0.64, "train_s_per_batch": 6.84e-4, "test_s_per_batch": 4.09e-4},
    "NMCDR": {"parameters_m": 0.56, "train_s_per_batch": 5.34e-4, "test_s_per_batch": 3.92e-4},
}

#: Qualitative trends of the hyper-parameter figures.
FIGURE_TRENDS: Dict[str, str] = {
    "fig3": (
        "Performance rises as the number of matching neighbours grows from 128 to 512 "
        "and drops at 1024 (too many neighbours introduce interference noise)."
    ),
    "fig4": (
        "Average performance rises slightly and then falls as the head/tail threshold "
        "K_head increases; variations are small, indicating robustness."
    ),
    "fig5": (
        "Head and tail user embedding distributions progressively align through the "
        "intra-to-inter matching module and the complementing module."
    ),
}
