"""Table formatting for the experiment harness.

Formats measured results in the same shape as the paper's tables and, where
reference values are transcribed in :mod:`repro.experiments.paper_reference`,
prints a paper-vs-measured comparison so bench output can be pasted directly
into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "format_overlap_table",
    "format_comparison_table",
    "format_metric_rows",
    "format_key_values",
]


def format_metric_rows(
    rows: Dict[str, Dict[str, float]],
    metrics: Sequence[str] = ("ndcg@10", "hr@10"),
    title: str = "",
) -> str:
    """Render ``{row_name: {metric: value}}`` as an aligned text table."""
    header = f"{'Model':<16}" + "".join(f"{metric:>12}" for metric in metrics)
    lines = []
    if title:
        lines.append(title)
    lines.extend([header, "-" * len(header)])
    for name, values in rows.items():
        cells = "".join(f"{values.get(metric, float('nan')):>12.4f}" for metric in metrics)
        lines.append(f"{name:<16}{cells}")
    return "\n".join(lines)


def format_overlap_table(
    scenario: str,
    domain_name: str,
    overlap_ratios: Sequence[float],
    measured: Dict[str, List[Tuple[float, float]]],
    paper_nmcdr: Optional[List[Tuple[float, float]]] = None,
    metric_names: Tuple[str, str] = ("NDCG@10", "HR@10"),
) -> str:
    """Render one half (one domain) of a Table II–V style overlap sweep.

    ``measured`` maps a model name to one (ndcg, hr) pair per overlap ratio.
    """
    ratio_header = "".join(f"{f'Ku={ratio:.1%}':>20}" for ratio in overlap_ratios)
    lines = [
        f"{scenario} — {domain_name} domain ({metric_names[0]} / {metric_names[1]}, %)",
        f"{'Model':<16}{ratio_header}",
    ]
    lines.append("-" * len(lines[-1]))
    for model_name, pairs in measured.items():
        cells = "".join(f"{f'{ndcg:6.2f}/{hr:6.2f}':>20}" for ndcg, hr in pairs)
        lines.append(f"{model_name:<16}{cells}")
    if paper_nmcdr is not None:
        cells = "".join(f"{f'{ndcg:6.2f}/{hr:6.2f}':>20}" for ndcg, hr in paper_nmcdr)
        lines.append(f"{'paper NMCDR':<16}{cells}")
    return "\n".join(lines)


def format_comparison_table(
    title: str,
    paper: Dict[str, float],
    measured: Dict[str, float],
    unit: str = "",
) -> str:
    """Two-column paper-vs-measured comparison for scalar quantities."""
    keys = list(dict.fromkeys(list(paper.keys()) + list(measured.keys())))
    header = f"{'Quantity':<28}{'paper':>14}{'measured':>14}"
    lines = [title, header, "-" * len(header)]
    for key in keys:
        paper_value = paper.get(key, float("nan"))
        measured_value = measured.get(key, float("nan"))
        lines.append(f"{key:<28}{paper_value:>14.4f}{measured_value:>14.4f}")
    if unit:
        lines.append(f"(values in {unit})")
    return "\n".join(lines)


def format_key_values(title: str, values: Dict[str, float]) -> str:
    """Simple aligned key/value block."""
    lines = [title]
    width = max((len(key) for key in values), default=0) + 2
    for key, value in values.items():
        if isinstance(value, float):
            lines.append(f"  {key:<{width}}{value:.6f}")
        else:
            lines.append(f"  {key:<{width}}{value}")
    return "\n".join(lines)
