"""Overlap-ratio sweep — Tables II, III, IV and V of the paper.

For one scenario, train the requested models at several user-overlap ratios
``Ku`` and collect NDCG@10 / HR@10 per domain.  The qualitative claims checked
against the paper:

* NMCDR achieves the best metrics at every overlap ratio;
* every model (including NMCDR) degrades as the overlap ratio shrinks;
* NMCDR's margin is largest in the sparse-item scenarios (Cloth–Sport,
  Phone–Elec) and smallest for Loan–Fund's Loan domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from .paper_reference import OVERLAP_RATIOS, nmcdr_reference_row
from .reporting import format_overlap_table
from .runner import ExperimentSettings, ScenarioResult, run_scenario

__all__ = ["OverlapSweepResult", "run_overlap_sweep", "DEFAULT_SWEEP_MODELS"]

#: Representative subset used in fast mode (one per baseline family + ours).
DEFAULT_SWEEP_MODELS = ("LR", "PLE", "GA-DTCDR", "PTUPCDR", "NMCDR")


@dataclass
class OverlapSweepResult:
    """Results of one overlap-ratio sweep on one scenario."""

    scenario: str
    overlap_ratios: List[float]
    model_names: List[str]
    per_ratio: List[ScenarioResult] = field(default_factory=list)

    def series(self, model_name: str, domain_key: str) -> List[Tuple[float, float]]:
        """(NDCG@10, HR@10) of one model across the sweep."""
        return [
            (
                result.results[model_name].metric(domain_key, "ndcg@10"),
                result.results[model_name].metric(domain_key, "hr@10"),
            )
            for result in self.per_ratio
        ]

    def nmcdr_win_fraction(self, domain_key: str, metric: str = "ndcg@10") -> float:
        """Fraction of sweep points where NMCDR is the best model."""
        wins = sum(
            1 for result in self.per_ratio if result.best_model(domain_key, metric) == "NMCDR"
        )
        return wins / max(len(self.per_ratio), 1)

    def mean_improvement(self, domain_key: str, metric: str = "ndcg@10") -> float:
        """Average relative improvement of NMCDR over the best baseline (%)."""
        values = [
            result.improvement_over_best_baseline(domain_key, metric)
            for result in self.per_ratio
        ]
        finite = [value for value in values if value == value and value != float("inf")]
        return sum(finite) / max(len(finite), 1)

    def monotone_degradation(self, model_name: str, domain_key: str) -> bool:
        """Whether the model's NDCG at the largest Ku beats the smallest Ku."""
        series = self.series(model_name, domain_key)
        return series[-1][0] >= series[0][0]

    def format_table(self, domain_key: str) -> str:
        domain_name = (
            self.per_ratio[0].task_summary["domain_a"]["name"]
            if domain_key == "a"
            else self.per_ratio[0].task_summary["domain_b"]["name"]
        )
        measured = {
            name: [(ndcg * 100.0, hr * 100.0) for ndcg, hr in self.series(name, domain_key)]
            for name in self.model_names
        }
        try:
            paper = nmcdr_reference_row(self.scenario, domain_name)
            if len(paper) != len(self.overlap_ratios):
                paper = None
        except KeyError:
            paper = None
        return format_overlap_table(
            self.scenario, domain_name, self.overlap_ratios, measured, paper_nmcdr=paper
        )


def run_overlap_sweep(
    scenario: str,
    model_names: Sequence[str] = DEFAULT_SWEEP_MODELS,
    overlap_ratios: Sequence[float] = OVERLAP_RATIOS,
    settings: Optional[ExperimentSettings] = None,
) -> OverlapSweepResult:
    """Run the Tables II–V experiment for one scenario."""
    base = settings or ExperimentSettings(scenario=scenario)
    sweep = OverlapSweepResult(
        scenario=scenario,
        overlap_ratios=list(overlap_ratios),
        model_names=list(model_names),
    )
    for ratio in overlap_ratios:
        point_settings = replace(base, scenario=scenario, overlap_ratio=float(ratio))
        sweep.per_ratio.append(run_scenario(point_settings, model_names))
    return sweep
