"""Hyper-parameter sensitivity sweeps — Figures 3 and 4 of the paper.

* Fig. 3: number of matching neighbours sampled by the fully connected
  matching graphs (128 → 1024 in the paper; scaled down here).
* Fig. 4: head/tail discrimination threshold ``K_head``.

Each sweep trains NMCDR only (the baselines do not have these knobs) and
reports the per-domain NDCG@10 / HR@10 series.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from ..core import CDRTrainer, NMCDR, build_task
from .runner import ExperimentSettings, prepare_dataset

__all__ = [
    "HyperparameterSweepResult",
    "run_matching_neighbors_sweep",
    "run_head_threshold_sweep",
]


@dataclass
class HyperparameterSweepResult:
    """Metric series over one swept hyper-parameter."""

    scenario: str
    parameter_name: str
    parameter_values: List[float]
    metrics: List[Dict[str, Dict[str, float]]] = field(default_factory=list)

    def series(self, domain_key: str, metric: str = "ndcg@10") -> List[float]:
        return [point.get(domain_key, {}).get(metric, float("nan")) for point in self.metrics]

    def average_series(self, metric: str = "ndcg@10") -> List[float]:
        """Average of the two domains per sweep point (what Fig. 3/4 plot)."""
        series_a = self.series("a", metric)
        series_b = self.series("b", metric)
        return [(a + b) / 2.0 for a, b in zip(series_a, series_b)]

    def best_value(self, metric: str = "ndcg@10") -> float:
        averaged = self.average_series(metric)
        best_index = max(range(len(averaged)), key=lambda index: averaged[index])
        return self.parameter_values[best_index]

    def relative_spread(self, metric: str = "ndcg@10") -> float:
        """(max - min) / max of the averaged series — small = robust (Fig. 4 claim)."""
        averaged = self.average_series(metric)
        top = max(averaged)
        if top <= 0:
            return float("nan")
        return (top - min(averaged)) / top

    def format_table(self) -> str:
        header = f"{self.parameter_name:<24}" + "".join(
            f"{value:>12g}" for value in self.parameter_values
        )
        lines = [
            f"{self.scenario}: NMCDR sensitivity to {self.parameter_name}",
            header,
            "-" * len(header),
        ]
        for metric in ("ndcg@10", "hr@10"):
            cells = "".join(f"{value:>12.4f}" for value in self.average_series(metric))
            lines.append(f"{('avg ' + metric):<24}{cells}")
        return "\n".join(lines)


def _run_single_nmcdr(
    settings: ExperimentSettings,
    nmcdr_overrides: Dict,
) -> Dict[str, Dict[str, float]]:
    dataset = prepare_dataset(settings)
    task = build_task(
        dataset,
        head_threshold=nmcdr_overrides.get("head_threshold", settings.head_threshold),
    )
    config = settings.nmcdr_config().variant(**nmcdr_overrides)
    model = NMCDR(task, config)
    trainer = CDRTrainer(model, task, settings.trainer_config())
    trainer.fit()
    return trainer.evaluate(subset="test")


def run_matching_neighbors_sweep(
    scenario: str,
    neighbor_counts: Sequence[int] = (8, 32, 64, 128),
    overlap_ratio: float = 0.5,
    settings: Optional[ExperimentSettings] = None,
) -> HyperparameterSweepResult:
    """Fig. 3: sweep the matching-neighbour sample size."""
    base = settings or ExperimentSettings(scenario=scenario)
    base = replace(base, scenario=scenario, overlap_ratio=overlap_ratio)
    result = HyperparameterSweepResult(
        scenario=scenario,
        parameter_name="matching_neighbors",
        parameter_values=[float(count) for count in neighbor_counts],
    )
    for count in neighbor_counts:
        result.metrics.append(
            _run_single_nmcdr(base, {"max_matching_neighbors": int(count)}),
        )
    return result


def run_head_threshold_sweep(
    scenario: str,
    thresholds: Sequence[int] = (3, 5, 7, 9, 11),
    overlap_ratio: float = 0.5,
    settings: Optional[ExperimentSettings] = None,
) -> HyperparameterSweepResult:
    """Fig. 4: sweep the head/tail user discrimination threshold ``K_head``."""
    base = settings or ExperimentSettings(scenario=scenario)
    base = replace(base, scenario=scenario, overlap_ratio=overlap_ratio)
    result = HyperparameterSweepResult(
        scenario=scenario,
        parameter_name="head_threshold",
        parameter_values=[float(threshold) for threshold in thresholds],
    )
    for threshold in thresholds:
        result.metrics.append(
            _run_single_nmcdr(base, {"head_threshold": int(threshold)}),
        )
    return result
