"""Data-density sweep — Table VI of the paper.

Interactions of both domains are sub-sampled to ``Ds`` of their volume and the
models are retrained at each density.  The paper's qualitative claims:

* every model degrades as the data gets sparser;
* NMCDR stays the best model at every density;
* NMCDR's relative improvement shrinks as the data gets extremely sparse
  (representation learning becomes hard for every model).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from .paper_reference import DENSITY_RATIOS
from .runner import ExperimentSettings, ScenarioResult, run_scenario

__all__ = ["DensitySweepResult", "run_density_sweep", "DEFAULT_DENSITY_MODELS"]

DEFAULT_DENSITY_MODELS = ("LR", "GA-DTCDR", "PTUPCDR", "NMCDR")


@dataclass
class DensitySweepResult:
    """Results of one density sweep on one scenario."""

    scenario: str
    density_ratios: List[float]
    model_names: List[str]
    per_ratio: List[ScenarioResult] = field(default_factory=list)

    def series(self, model_name: str, domain_key: str) -> List[Tuple[float, float]]:
        return [
            (
                result.results[model_name].metric(domain_key, "ndcg@10"),
                result.results[model_name].metric(domain_key, "hr@10"),
            )
            for result in self.per_ratio
        ]

    def nmcdr_win_fraction(self, domain_key: str, metric: str = "ndcg@10") -> float:
        wins = sum(
            1 for result in self.per_ratio if result.best_model(domain_key, metric) == "NMCDR"
        )
        return wins / max(len(self.per_ratio), 1)

    def degradation_with_sparsity(self, model_name: str, domain_key: str) -> bool:
        """Whether the densest setting outperforms the sparsest one."""
        series = self.series(model_name, domain_key)
        return series[-1][0] >= series[0][0]

    def format_table(self, domain_key: str) -> str:
        domain_name = (
            self.per_ratio[0].task_summary["domain_a"]["name"]
            if domain_key == "a"
            else self.per_ratio[0].task_summary["domain_b"]["name"]
        )
        header = f"{'Model':<16}" + "".join(
            f"{f'Ds={ratio:.0%}':>18}" for ratio in self.density_ratios
        )
        lines = [
            f"{self.scenario} — {domain_name} (NDCG@10 / HR@10, %)",
            header,
            "-" * len(header),
        ]
        for name in self.model_names:
            cells = "".join(
                f"{f'{ndcg * 100:6.2f}/{hr * 100:6.2f}':>18}"
                for ndcg, hr in self.series(name, domain_key)
            )
            lines.append(f"{name:<16}{cells}")
        return "\n".join(lines)


def run_density_sweep(
    scenario: str,
    model_names: Sequence[str] = DEFAULT_DENSITY_MODELS,
    density_ratios: Sequence[float] = DENSITY_RATIOS,
    overlap_ratio: float = 0.5,
    settings: Optional[ExperimentSettings] = None,
) -> DensitySweepResult:
    """Run the Table VI experiment for one scenario."""
    base = settings or ExperimentSettings(scenario=scenario)
    sweep = DensitySweepResult(
        scenario=scenario,
        density_ratios=list(density_ratios),
        model_names=list(model_names),
    )
    for ratio in density_ratios:
        point_settings = replace(
            base, scenario=scenario, density_ratio=float(ratio), overlap_ratio=overlap_ratio
        )
        sweep.per_ratio.append(run_scenario(point_settings, model_names))
    return sweep
