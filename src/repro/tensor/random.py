"""Seeded random-number utilities shared across the library.

Every stochastic component (parameter initialisation, negative sampling,
dataset synthesis, dropout) draws from an explicitly passed
``numpy.random.Generator`` or from the module-level default generator managed
here, so that experiments and tests are reproducible end to end.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["set_seed", "get_rng", "spawn_rng"]

_DEFAULT_SEED = 0
_default_rng = np.random.default_rng(_DEFAULT_SEED)


def set_seed(seed: int) -> None:
    """Reset the library-wide default random generator."""
    global _default_rng
    _default_rng = np.random.default_rng(int(seed))


def get_rng(rng: Optional[np.random.Generator] = None) -> np.random.Generator:
    """Return ``rng`` if given, otherwise the library default generator."""
    if rng is not None:
        return rng
    return _default_rng


def spawn_rng(seed: Optional[int] = None) -> np.random.Generator:
    """Create an independent generator, optionally from an explicit seed."""
    if seed is not None:
        return np.random.default_rng(int(seed))
    return np.random.default_rng(_default_rng.integers(0, 2**63 - 1))
