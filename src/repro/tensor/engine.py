"""Runtime configuration of the autograd engine.

Three concerns live here, all of them shared by :mod:`repro.tensor.tensor`
and :mod:`repro.tensor.ops`:

* **dtype** — the engine computes in ``float64`` by default (bit-for-bit
  reproducibility of the paper tables matters more than speed for the
  reference experiments), but can be switched to ``float32`` for a ~2x
  cheaper hot path when numeric parity is not required.
* **gradient buffer pool** — backward passes of identically-shaped graphs
  (the common case: one graph per training step) would otherwise allocate a
  fresh gradient array per node per step.  Intermediate gradient buffers are
  returned to a shape-keyed free list once a node has propagated its
  gradient, and :meth:`Tensor._accumulate` draws from that free list.
* **op hook** — an optional callback invoked for every graph node created by
  :meth:`Tensor._build`; the profiling subsystem uses it to count operations
  without adding overhead when disabled.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = [
    "get_dtype",
    "set_dtype",
    "engine_dtype",
    "GradientBufferPool",
    "buffer_pool",
    "set_op_hook",
    "get_op_hook",
    "set_backward_hook",
    "set_trace_backward_hook",
]

_DTYPES = {
    "float32": np.float32,
    "float64": np.float64,
}

_dtype: np.dtype = np.dtype(np.float64)

#: Optional ``fn(op_name)`` invoked on every graph-node creation.
_op_hook: Optional[Callable[[str], None]] = None

#: Optional ``fn(op_name, seconds)`` invoked after each node's backward rule.
_backward_hook: Optional[Callable[[str, float], None]] = None

#: Optional ``fn(tensor, grad) -> bool`` consulted at the top of
#: ``Tensor.backward``.  Returning True means the hook handled the whole
#: backward pass (traced replay); False falls through to the eager walk.
_trace_backward_hook = None


def get_dtype() -> np.dtype:
    """Return the dtype newly created tensors are stored in."""
    return _dtype


def set_dtype(dtype) -> np.dtype:
    """Set the engine dtype (``"float32"`` or ``"float64"``); returns the old one.

    Switching dtype mid-graph is not supported: tensors created before the
    switch keep their storage, and mixing them into one graph will silently
    cast at every node boundary.  Switch between training runs, not inside
    one.
    """
    global _dtype
    if isinstance(dtype, str):
        if dtype not in _DTYPES:
            raise ValueError(
                f"unknown engine dtype '{dtype}'; known: {sorted(_DTYPES)}",
            )
        resolved = np.dtype(_DTYPES[dtype])
    else:
        resolved = np.dtype(dtype)
        if resolved not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(f"engine dtype must be float32 or float64, got {resolved}")
    previous = _dtype
    _dtype = resolved
    if resolved != previous:
        buffer_pool.clear()
    return previous


@contextmanager
def engine_dtype(dtype) -> Iterator[np.dtype]:
    """Context manager that temporarily switches the engine dtype."""
    previous = set_dtype(dtype)
    try:
        yield _dtype
    finally:
        set_dtype(previous)


class GradientBufferPool:
    """Shape-keyed free list of gradient arrays.

    ``acquire`` returns a writable array of the requested shape (recycled
    when possible), ``release`` hands a no-longer-needed buffer back.  The
    pool never hands out the same array twice without an intervening
    ``release``, and the caller that acquired a buffer is its sole owner
    until released.
    """

    #: Upper bound of retained buffers per shape; prevents pathological growth
    #: when many differently-rooted graphs are backpropagated.
    max_per_shape = 32

    def __init__(self) -> None:
        self._free: Dict[Tuple[Tuple[int, ...], str], List[np.ndarray]] = {}
        self.hits = 0
        self.misses = 0

    def acquire(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        key = (tuple(shape), np.dtype(dtype).str)
        stack = self._free.get(key)
        if stack:
            self.hits += 1
            return stack.pop()
        self.misses += 1
        return np.empty(shape, dtype=dtype)

    def release(self, array: np.ndarray) -> None:
        if array is None or not isinstance(array, np.ndarray):
            return
        if not array.flags.owndata or not array.flags.writeable:
            return  # views / read-only arrays are not safe to recycle
        key = (array.shape, array.dtype.str)
        stack = self._free.setdefault(key, [])
        if len(stack) < self.max_per_shape:
            stack.append(array)

    def clear(self) -> None:
        self._free.clear()
        self.hits = 0
        self.misses = 0

    def num_buffered(self) -> int:
        return sum(len(stack) for stack in self._free.values())


#: Process-wide pool used by ``Tensor.backward`` / ``Tensor._accumulate``.
buffer_pool = GradientBufferPool()


def set_op_hook(
    hook: Optional[Callable[[str], None]],
) -> Optional[Callable[[str], None]]:
    """Install (or clear with ``None``) the per-node op hook; returns the old one."""
    global _op_hook
    previous = _op_hook
    _op_hook = hook
    return previous


def get_op_hook() -> Optional[Callable[[str], None]]:
    return _op_hook


def set_backward_hook(
    hook: Optional[Callable[[str, float], None]]
) -> Optional[Callable[[str, float], None]]:
    """Install (or clear) the per-node backward timing hook; returns the old one."""
    global _backward_hook
    previous = _backward_hook
    _backward_hook = hook
    return previous


def set_trace_backward_hook(hook):
    """Install (or clear) the traced-replay backward interposer; returns the old one."""
    global _trace_backward_hook
    previous = _trace_backward_hook
    _trace_backward_hook = hook
    return previous
