"""Traced step programs: record one executed step, replay a flat program.

``PlanSchedule`` and ``SubgraphCache`` already guarantee that the same plan
signature produces a structurally identical autograd graph step after step,
yet the eager engine rebuilds that graph every time: one ``Tensor`` node, one
backward closure and one gradient-dict entry per op, plus a topological sort
per backward.  This module removes that constant factor.

* **Recording** — :class:`TraceRuntime` wraps every public op (the same
  module-attribute patch points :func:`repro.profiling.instrument_ops` uses).
  The first execution of a section runs eagerly and is captured as a
  :class:`SteppedProgram`: a flat, fixed-topo-order list of :class:`OpStep`
  records with pre-resolved input descriptors, plus one
  :class:`BackwardEvent` per ``backward()`` call holding the reversed
  topological order as step references.
* **Replay** — subsequent executions of the same section key run each op as
  a direct kernel call: no node allocation, no closures, no topo re-sort, no
  gradient dict.  Activations and gradients live in per-step **arena slabs**
  that are reused across steps; shape-polymorphic slots rebind (reallocate)
  when a step's batch shapes change, so variable batch sizes replay fine.
* **Guards** — every replayed op re-validates its identity against the
  recording: op name in sequence order, producing-step identity of each
  tensor input, input dtypes and ``requires_grad`` flags, and the dtypes of
  raw ndarray operands.  Any mismatch raises :class:`TraceGuardMismatch`;
  the section then falls back to eager execution (restoring any consumed rng
  state first) and re-records.  Correctness therefore never depends on the
  section key: the key only controls the hit rate.

Kernels recompute the forward exactly as the eager op does (same expressions,
same dtype coercions, same clip/mask recipes), so replayed training is
bit-identical to eager execution — this is asserted for float64 in the
``traced`` test suite and the efficiency bench's bit-exactness canary.
"""

from __future__ import annotations

import copy
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from . import engine
from .ops import _csc_matvecs, _scatter_add_2d, _sigmoid_forward
from .tensor import Tensor, _unbroadcast

__all__ = [
    "TraceGuardMismatch",
    "TraceRuntime",
    "TraceStats",
    "SteppedProgram",
    "OpStep",
    "model_rng_sources",
    "model_trace_signature",
    "pinned_output",
]


class TraceGuardMismatch(Exception):
    """A replayed section diverged from its recording; caller must re-trace."""


# ----------------------------------------------------------------------
# externally-backed output slabs
# ----------------------------------------------------------------------
#: Provider armed by :func:`pinned_output` for the next recorded/replayed op.
_pending_pin: Optional[Callable[[tuple, np.dtype], np.ndarray]] = None


def _take_pending_pin():
    global _pending_pin
    pin, _pending_pin = _pending_pin, None
    return pin


@contextmanager
def pinned_output(provider):
    """Back the next op's output slab with an externally-owned buffer.

    ``provider(shape, dtype)`` must return a writable C-contiguous array of
    exactly that shape/dtype — typically a view into a shared-memory block.
    Under recording the op's eager result is copied into the provided buffer
    and the output node rebound to it, so the recorded program's slab *is*
    the external buffer; every replay re-resolves the provider, letting the
    owner swap the backing store (double-buffer slot flips, regrown
    segments) between steps without retracing.  Outside tracing the provider
    is consumed by the caller directly (see ``_TablePublisher``); arming it
    here is a no-op for untraced ops only if the wrapped op never fires, so
    callers must pair the context with exactly one op call.
    """
    global _pending_pin
    previous = _pending_pin
    _pending_pin = provider
    try:
        yield
    finally:
        _pending_pin = previous


def _load_csr_matvecs():
    """Import scipy's private CSR mat-vec kernel and self-check it once.

    Scipy's own ``csr @ dense`` product calls this kernel over a zero-filled
    output, so accumulating into a zero-filled arena slab through it is
    bit-identical to the eager ``matrix @ features`` while skipping the
    per-call result allocation.  No stability promise exists for
    ``_sparsetools``, so the path is only enabled when the kernel reproduces
    a known product on a tiny example.
    """
    try:  # pragma: no cover - exercised implicitly at import
        from scipy.sparse._sparsetools import csr_matvecs
    except ImportError:  # pragma: no cover - older/newer scipy layouts
        return None
    try:
        matrix = sp.csr_matrix(
            (np.array([1.5, -2.0, 0.25]), np.array([0, 2, 1]), np.array([0, 2, 2, 3])),
            shape=(3, 3),
        )
        dense = np.arange(6, dtype=np.float64).reshape(3, 2)
        out = np.zeros((3, 2))
        csr_matvecs(
            3, 3, 2, matrix.indptr, matrix.indices, matrix.data, dense.ravel(), out.ravel()
        )
        if not np.array_equal(out, matrix @ dense):
            return None
    except Exception:  # pragma: no cover - changed private signature
        return None
    return csr_matvecs


_csr_matvecs = _load_csr_matvecs()


# ----------------------------------------------------------------------
# arena / stats
# ----------------------------------------------------------------------
class Arena:
    """Bookkeeping and recycling for the replay slabs owned by :class:`OpStep`.

    Slabs are plain per-step arrays (activation output + gradient); the
    arena tracks how many are bound, their total bytes, and how often a slab
    was rebound because a step's shape changed between replays.  Rebound and
    released slabs park in a bounded per-(shape, dtype) free list so
    shape-polymorphic steps (fanout-sampled subgraphs fluctuate every step)
    recycle allocations instead of churning ``np.empty`` — the same trick
    the eager path's :class:`~repro.tensor.engine.GradientBufferPool` plays,
    kept separate so replay never competes with eager for buffers.
    """

    #: Free-list depth per distinct (shape, dtype); mirrors the engine pool.
    max_per_shape = 32
    #: Total bytes the free list may hold.  Fanout-sampled plans produce
    #: edge-sized shapes that rarely recur exactly, so without a global cap
    #: the exact-shape-keyed free list grows without bound; dict insertion
    #: order makes eviction approximately oldest-shape-first.
    max_free_bytes = 64 * 1024 * 1024

    def __init__(self) -> None:
        self.slabs = 0
        self.nbytes = 0
        self.rebinds = 0
        self.reuses = 0
        self._free: Dict[Tuple, List[np.ndarray]] = {}
        self._free_bytes = 0

    def _park(self, array: np.ndarray) -> None:
        stack = self._free.setdefault((array.shape, array.dtype.str), [])
        if len(stack) >= self.max_per_shape:
            return
        stack.append(array)
        self._free_bytes += array.nbytes
        while self._free_bytes > self.max_free_bytes and self._free:
            oldest = next(iter(self._free))
            for stale in self._free.pop(oldest):
                self._free_bytes -= stale.nbytes

    def allocate(self, old: Optional[np.ndarray], shape, dtype) -> np.ndarray:
        if old is None:
            self.slabs += 1
        else:
            self.rebinds += 1
            self.nbytes -= old.nbytes
            self._park(old)
        stack = self._free.get((tuple(shape), np.dtype(dtype).str))
        if stack:
            array = stack.pop()
            self._free_bytes -= array.nbytes
            self.reuses += 1
        else:
            array = np.empty(shape, dtype=dtype)
        self.nbytes += array.nbytes
        return array

    def released(self, arrays: Iterable[Optional[np.ndarray]]) -> None:
        for array in arrays:
            if array is not None:
                self.slabs -= 1
                self.nbytes -= array.nbytes
                self._park(array)

    def as_dict(self) -> Dict[str, int]:
        return {
            "slabs": self.slabs,
            "nbytes": self.nbytes,
            "rebinds": self.rebinds,
            "reuses": self.reuses,
        }


class TraceStats:
    """Section-level counters for one :class:`TraceRuntime`."""

    def __init__(self) -> None:
        self.hits = 0          # sections replayed from a cached program
        self.misses = 0        # sections recorded (first sight of a key)
        self.fallbacks = 0     # guard mismatches that forced a re-trace
        self.untraceable = 0   # sections permanently poisoned to eager
        self.eager = 0         # sections run eagerly because of poisoning
        self.evictions = 0     # programs dropped by the LRU bound
        self.last_fallback: Optional[str] = None

    @property
    def sections(self) -> int:
        return self.hits + self.misses + self.fallbacks + self.eager

    @property
    def hit_rate(self) -> float:
        total = self.sections
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "fallbacks": self.fallbacks,
            "untraceable": self.untraceable,
            "eager": self.eager,
            "evictions": self.evictions,
            "sections": self.sections,
            "hit_rate": self.hit_rate,
        }

    @staticmethod
    def merge(dicts: Iterable[Optional[Dict[str, Any]]]) -> Dict[str, Any]:
        """Sum stat dicts (e.g. one per sharded worker) into one."""
        merged: Dict[str, Any] = {
            "hits": 0,
            "misses": 0,
            "fallbacks": 0,
            "untraceable": 0,
            "eager": 0,
            "evictions": 0,
            "sections": 0,
            "arena": {"slabs": 0, "nbytes": 0, "rebinds": 0, "reuses": 0},
        }
        for stats in dicts:
            if not stats:
                continue
            for key in ("hits", "misses", "fallbacks", "untraceable", "eager",
                        "evictions", "sections"):
                merged[key] += int(stats.get(key, 0))
            arena = stats.get("arena") or {}
            for key in ("slabs", "nbytes", "rebinds", "reuses"):
                merged["arena"][key] += int(arena.get(key, 0))
        total = merged["sections"]
        merged["hit_rate"] = merged["hits"] / total if total else 0.0
        return merged


# ----------------------------------------------------------------------
# program structure
# ----------------------------------------------------------------------
class OpStep:
    """One recorded op: a recycled output node plus its replay state."""

    __slots__ = (
        "name", "hook", "node", "forward", "backward", "descriptors",
        "array_sig", "args", "kwargs", "saved", "out_slab", "grad",
        "has_grad", "requires", "arena", "scratch", "pinned",
    )

    def __init__(self, name, hook, node, forward, backward, descriptors,
                 array_sig, arena) -> None:
        self.name = name
        self.hook = hook
        self.node = node
        self.forward = forward
        self.backward = backward
        self.descriptors = descriptors
        self.array_sig = array_sig
        self.args: Tuple = ()
        self.kwargs: Dict = {}
        self.saved: Any = None
        self.out_slab: Optional[np.ndarray] = None
        self.grad: Optional[np.ndarray] = None
        self.has_grad = False
        self.requires = bool(node.requires_grad)
        self.arena = arena
        self.scratch: Dict[str, np.ndarray] = {}
        self.pinned: Optional[Callable] = None

    def slab(self, shape, dtype) -> np.ndarray:
        """Persistent output buffer, rebound when the step's shape changes."""
        if self.pinned is not None:
            # Externally-backed step: the provider owns the buffer (e.g. a
            # shm exchange slot), re-resolved every replay so the backing
            # store may move between steps.  Never arena-tracked.
            return self.pinned(shape, dtype)
        out = self.out_slab
        if out is None or out.shape != shape or out.dtype != dtype:
            out = self.arena.allocate(out, shape, dtype)
            self.out_slab = out
        return out

    def buffer(self, tag: str, shape, dtype) -> np.ndarray:
        """Persistent scratch slab for a kernel-internal temporary.

        Heavy kernels route their large intermediates (edge gathers,
        broadcast products, gradient heads) through these with ``out=`` so a
        replayed step performs zero large allocations — the eager path
        mallocs (and for multi-MB arrays, mmaps) each of them per call.

        Each tag is backed by a flat slab that only ever grows (by 1.5x),
        and the caller receives a reshaped prefix view.  Sampled plans make
        edge-sized shapes fluctuate every step; sizing by capacity instead
        of exact shape turns one-rebind-per-replay into O(log max_size)
        rebinds over a whole run.
        """
        dtype = np.dtype(dtype)
        need = 1
        for dim in shape:
            need *= int(dim)
        base = self.scratch.get(tag)
        if base is None or base.dtype != dtype or base.size < need:
            grown = need if base is None else max(need, base.size + (base.size >> 1))
            base = self.arena.allocate(base, (grown,), dtype)
            self.scratch[tag] = base
        view = base[:need]
        view.shape = shape
        return view

    def grad_slab(self) -> np.ndarray:
        shape, dtype = self.node.data.shape, self.node.data.dtype
        grad = self.grad
        if grad is None or grad.shape != shape or grad.dtype != dtype:
            grad = self.arena.allocate(grad, shape, dtype)
            self.grad = grad
        return grad

    def accumulate(self, value: np.ndarray) -> None:
        """Mirror of ``Tensor._accumulate`` against the arena grad slab."""
        if not self.requires:
            return
        value = _unbroadcast(value, self.node.data.shape)
        if self.has_grad:
            self.grad += value
        else:
            np.copyto(self.grad_slab(), value)
            self.has_grad = True

    def zero_grad_buffer(self) -> np.ndarray:
        """Mirror of ``Tensor._ensure_grad_buffer`` for scatter backwards."""
        if not self.has_grad:
            grad = self.grad_slab()
            grad.fill(0.0)
            self.has_grad = True
        return self.grad

    def recycle_grad(self) -> None:
        """Park the consumed gradient slab for reuse by an earlier step.

        Called right after this step's backward kernel ran: reverse topo
        order guarantees no later reader, so the slab cycles through the
        arena free list exactly like eager's ``GradientBufferPool`` churn —
        a handful of cache-hot buffers serve the whole sweep instead of one
        cold persistent slab per step.
        """
        grad = self.grad
        if grad is not None:
            self.grad = None
            self.arena.released((grad,))


class BackwardEvent:
    """One recorded ``backward()`` call: root step + reversed topo order."""

    __slots__ = ("root", "steps")

    def __init__(self, root: OpStep, steps: Tuple[OpStep, ...]) -> None:
        self.root = root
        self.steps = steps


class SteppedProgram:
    """A recorded section: flat op steps plus backward events, in order."""

    __slots__ = ("key", "steps", "events", "untraceable", "replays")

    def __init__(self, key) -> None:
        self.key = key
        self.steps: List[OpStep] = []
        self.events: List[BackwardEvent] = []
        self.untraceable = False
        self.replays = 0


# ----------------------------------------------------------------------
# kernel helpers (exact mirrors of the eager coercions)
# ----------------------------------------------------------------------
def _tdata(x) -> np.ndarray:
    """Mirror ``as_tensor(x).data``: engine-dtype array for non-tensors."""
    if isinstance(x, Tensor):
        return x.data
    return np.asarray(x, dtype=engine.get_dtype())


def _wants_grad(x) -> bool:
    step = getattr(x, "_trace_step", None)
    if step is not None:
        return step.requires
    return isinstance(x, Tensor) and x.requires_grad


def _acc(target, value) -> None:
    """Accumulate into a traced step's slab or an untraced leaf's ``grad``."""
    step = getattr(target, "_trace_step", None)
    if step is not None:
        step.accumulate(value)
    else:
        target._accumulate(value)


def _grad_buffer(target) -> np.ndarray:
    """Zero-filled accumulation buffer for scatter-style backward rules."""
    step = getattr(target, "_trace_step", None)
    if step is not None:
        return step.zero_grad_buffer()
    return target._ensure_grad_buffer()


def _finish(step: OpStep, out_data: np.ndarray) -> Tensor:
    """Install the forward result on the recycled node (eager dtype cast)."""
    node = step.node
    node.data = np.asarray(out_data, dtype=engine.get_dtype())
    return node


def _arg(args, kwargs, position, name, default=None):
    if len(args) > position:
        return args[position]
    return kwargs.get(name, default)


def _expand_reduced(g: np.ndarray, axis, keepdims: bool, ndim: int) -> np.ndarray:
    if axis is not None and not keepdims:
        axes = axis if isinstance(axis, tuple) else (axis,)
        for ax in sorted(ax % ndim for ax in axes):
            g = np.expand_dims(g, ax)
    return g


# ----------------------------------------------------------------------
# replay kernels — elementwise arithmetic
# ----------------------------------------------------------------------
def _binary_forward(step, ufunc):
    a, b = step.args
    a_data, b_data = _tdata(a), _tdata(b)
    dtype = engine.get_dtype()
    if a_data.dtype == dtype and b_data.dtype == dtype:
        shape = np.broadcast_shapes(a_data.shape, b_data.shape)
        out = ufunc(a_data, b_data, out=step.slab(shape, dtype))
    else:
        out = ufunc(a_data, b_data)
    step.saved = (a, b, a_data, b_data)
    return _finish(step, out)


def _f_add(step):
    return _binary_forward(step, np.add)


def _b_add(step, grad):
    a, b = step.saved[0], step.saved[1]
    if _wants_grad(a):
        _acc(a, grad)
    if _wants_grad(b):
        _acc(b, grad)


def _f_sub(step):
    return _binary_forward(step, np.subtract)


def _b_sub(step, grad):
    a, b = step.saved[0], step.saved[1]
    if _wants_grad(a):
        _acc(a, grad)
    if _wants_grad(b):
        _acc(b, -grad)


def _f_mul(step):
    return _binary_forward(step, np.multiply)


def _b_mul(step, grad):
    a, b, a_data, b_data = step.saved
    if _wants_grad(a):
        _acc(a, grad * b_data)
    if _wants_grad(b):
        _acc(b, grad * a_data)


def _f_div(step):
    return _binary_forward(step, np.divide)


def _b_div(step, grad):
    a, b, a_data, b_data = step.saved
    if _wants_grad(a):
        _acc(a, grad / b_data)
    if _wants_grad(b):
        _acc(b, -grad * a_data / (b_data ** 2))


def _f_neg(step):
    (a,) = step.args
    a_data = _tdata(a)
    step.saved = a
    return _finish(step, -a_data)


def _b_neg(step, grad):
    if _wants_grad(step.saved):
        _acc(step.saved, -grad)


def _f_pow(step):
    a = step.args[0]
    exponent = float(_arg(step.args, step.kwargs, 1, "exponent"))
    a_data = _tdata(a)
    step.saved = (a, a_data, exponent)
    return _finish(step, a_data ** exponent)


def _b_pow(step, grad):
    a, a_data, exponent = step.saved
    if _wants_grad(a):
        _acc(a, grad * exponent * (a_data ** (exponent - 1.0)))


# ----------------------------------------------------------------------
# replay kernels — linear algebra
# ----------------------------------------------------------------------
def _f_matmul(step):
    a, b = step.args
    a_data, b_data = _tdata(a), _tdata(b)
    dtype = engine.get_dtype()
    if (
        a_data.ndim == 2
        and b_data.ndim == 2
        and a_data.dtype == dtype
        and b_data.dtype == dtype
    ):
        out = np.matmul(
            a_data, b_data, out=step.slab((a_data.shape[0], b_data.shape[1]), dtype)
        )
    else:
        out = a_data @ b_data
    step.saved = (a, b, a_data, b_data)
    return _finish(step, out)


def _b_matmul(step, grad):
    a, b, a_data, b_data = step.saved
    if a_data.ndim == 1 and b_data.ndim == 1:
        if _wants_grad(a):
            _acc(a, grad * b_data)
        if _wants_grad(b):
            _acc(b, grad * a_data)
        return
    if a_data.ndim == 1:
        if _wants_grad(a):
            _acc(a, grad @ b_data.T)
        if _wants_grad(b):
            _acc(b, np.outer(a_data, grad))
        return
    if b_data.ndim == 1:
        if _wants_grad(a):
            _acc(a, np.outer(grad, b_data))
        if _wants_grad(b):
            _acc(b, a_data.T @ grad)
        return
    if _wants_grad(a):
        _acc(a, grad @ np.swapaxes(b_data, -1, -2))
    if _wants_grad(b):
        _acc(b, np.swapaxes(a_data, -1, -2) @ grad)


def _f_linear(step):
    args, kwargs = step.args, step.kwargs
    x, weight = args[0], args[1]
    bias = _arg(args, kwargs, 2, "bias")
    activation = _arg(args, kwargs, 3, "activation")
    x_data, w_data = _tdata(x), _tdata(weight)
    dtype = engine.get_dtype()
    fast = x_data.dtype == dtype and w_data.dtype == dtype
    if fast:
        out = np.matmul(
            x_data, w_data, out=step.slab((x_data.shape[0], w_data.shape[1]), dtype)
        )
    else:
        out = x_data @ w_data
    if bias is not None:
        b_data = _tdata(bias)
        if fast and b_data.dtype == dtype:
            np.add(out, b_data, out=out)
        else:
            out = out + b_data
    if activation == "relu":
        np.maximum(out, 0.0, out=out)
    elif activation == "sigmoid":
        out = _sigmoid_forward(out)
    elif activation == "tanh":
        np.tanh(out, out=out)
    step.saved = (x, weight, bias, activation, x_data, w_data, out)
    return _finish(step, out)


def _b_linear(step, grad):
    # The activation head and both matmul products go through scratch slabs
    # with ``out=`` — same ufunc chain and dtype promotion as the eager
    # closure, no per-replay allocation for the three full-size temporaries.
    x, weight, bias, activation, x_data, w_data, out = step.saved
    grad = np.asarray(grad)
    if activation == "relu":
        mask = np.greater(out, 0, out=step.buffer("am", out.shape, np.bool_))
        head = np.multiply(
            grad, mask, out=step.buffer("hd", out.shape, grad.dtype)
        )
    elif activation == "sigmoid":
        head = np.multiply(
            grad, out,
            out=step.buffer("hd", out.shape, np.result_type(grad, out)),
        )
        tail = np.subtract(1.0, out, out=step.buffer("tl", out.shape, out.dtype))
        np.multiply(head, tail, out=head)
    elif activation == "tanh":
        tail = np.power(out, 2, out=step.buffer("tl", out.shape, out.dtype))
        np.subtract(1.0, tail, out=tail)
        head = np.multiply(
            grad, tail,
            out=step.buffer("hd", out.shape, np.result_type(grad, tail)),
        )
    else:
        head = grad
    if _wants_grad(x):
        _acc(
            x,
            np.matmul(
                head, w_data.T,
                out=step.buffer(
                    "xg",
                    (head.shape[0], w_data.shape[0]),
                    np.result_type(head, w_data),
                ),
            ),
        )
    if _wants_grad(weight):
        _acc(
            weight,
            np.matmul(
                x_data.T, head,
                out=step.buffer(
                    "wg",
                    (x_data.shape[1], head.shape[1]),
                    np.result_type(x_data, head),
                ),
            ),
        )
    if bias is not None and _wants_grad(bias):
        _acc(
            bias,
            np.sum(
                head, axis=0, out=step.buffer("bg", (head.shape[1],), head.dtype)
            ),
        )


def _f_addmm(step):
    args, kwargs = step.args, step.kwargs
    c, a, b = args[0], args[1], args[2]
    beta = float(_arg(args, kwargs, 3, "beta", 1.0))
    alpha = float(_arg(args, kwargs, 4, "alpha", 1.0))
    c_data, a_data, b_data = _tdata(c), _tdata(a), _tdata(b)
    product = a_data @ b_data
    if alpha != 1.0:
        product *= alpha
    out = product + (beta * c_data if beta != 1.0 else c_data)
    step.saved = (c, a, b, a_data, b_data, beta, alpha)
    return _finish(step, out)


def _b_addmm(step, grad):
    c, a, b, a_data, b_data, beta, alpha = step.saved
    grad = np.asarray(grad)
    if _wants_grad(c):
        _acc(c, grad if beta == 1.0 else beta * grad)
    if _wants_grad(a):
        scaled = grad if alpha == 1.0 else alpha * grad
        _acc(a, scaled @ b_data.T)
    if _wants_grad(b):
        scaled = grad if alpha == 1.0 else alpha * grad
        _acc(b, a_data.T @ scaled)


# ----------------------------------------------------------------------
# replay kernels — unary nonlinearities
# ----------------------------------------------------------------------
def _f_exp(step):
    a = step.args[0]
    out = np.exp(_tdata(a))
    step.saved = (a, out)
    return _finish(step, out)


def _b_exp(step, grad):
    a, out = step.saved
    if _wants_grad(a):
        _acc(a, grad * out)


_EPS = 1e-12


def _f_log(step):
    a = step.args[0]
    a_data = _tdata(a)
    step.saved = (a, a_data)
    return _finish(step, np.log(np.maximum(a_data, _EPS)))


def _b_log(step, grad):
    a, a_data = step.saved
    if _wants_grad(a):
        _acc(a, grad / np.maximum(a_data, _EPS))


def _f_sqrt(step):
    a = step.args[0]
    out = np.sqrt(np.maximum(_tdata(a), 0.0))
    step.saved = (a, out)
    return _finish(step, out)


def _b_sqrt(step, grad):
    a, out = step.saved
    if _wants_grad(a):
        _acc(a, grad * 0.5 / np.maximum(out, _EPS))


def _f_relu(step):
    a = step.args[0]
    a_data = _tdata(a)
    mask = a_data > 0
    dtype = engine.get_dtype()
    if a_data.dtype == dtype:
        out = np.multiply(a_data, mask, out=step.slab(a_data.shape, dtype))
    else:
        out = a_data * mask
    step.saved = (a, mask)
    return _finish(step, out)


def _b_relu(step, grad):
    a, mask = step.saved
    if _wants_grad(a):
        _acc(a, grad * mask)


def _f_leaky_relu(step):
    a = step.args[0]
    negative_slope = _arg(step.args, step.kwargs, 1, "negative_slope", 0.01)
    a_data = _tdata(a)
    mask = a_data > 0
    step.saved = (a, mask, negative_slope)
    return _finish(step, np.where(mask, a_data, negative_slope * a_data))


def _b_leaky_relu(step, grad):
    a, mask, negative_slope = step.saved
    if _wants_grad(a):
        _acc(a, grad * np.where(mask, 1.0, negative_slope))


def _f_sigmoid(step):
    a = step.args[0]
    out = _sigmoid_forward(_tdata(a))
    step.saved = (a, out)
    return _finish(step, out)


def _b_sigmoid(step, grad):
    a, out = step.saved
    if _wants_grad(a):
        _acc(a, grad * out * (1.0 - out))


def _f_tanh(step):
    a = step.args[0]
    a_data = _tdata(a)
    dtype = engine.get_dtype()
    if a_data.dtype == dtype:
        out = np.tanh(a_data, out=step.slab(a_data.shape, dtype))
    else:
        out = np.tanh(a_data)
    step.saved = (a, out)
    return _finish(step, out)


def _b_tanh(step, grad):
    a, out = step.saved
    if _wants_grad(a):
        _acc(a, grad * (1.0 - out ** 2))


def _f_gated_tanh_mix(step):
    first, second, gate_logits = step.args
    f_data, s_data, g_data = _tdata(first), _tdata(second), _tdata(gate_logits)
    gate = _sigmoid_forward(g_data)
    out = np.tanh((1.0 - gate) * f_data + gate * s_data)
    step.saved = (first, second, gate_logits, f_data, s_data, gate, out)
    return _finish(step, out)


def _b_gated_tanh_mix(step, grad):
    first, second, gate_logits, f_data, s_data, gate, out = step.saved
    base = grad * (1.0 - out ** 2)
    if _wants_grad(first):
        _acc(first, base * (1.0 - gate))
    if _wants_grad(second):
        _acc(second, base * gate)
    if _wants_grad(gate_logits):
        _acc(gate_logits, base * (s_data - f_data) * gate * (1.0 - gate))


def _f_softplus(step):
    a = step.args[0]
    x = _tdata(a)
    out = np.where(x > 30.0, x, np.log1p(np.exp(np.minimum(x, 30.0))))
    step.saved = (a, x)
    return _finish(step, out)


def _b_softplus(step, grad):
    a, x = step.saved
    if _wants_grad(a):
        sig = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        _acc(a, grad * sig)


def _f_softmax(step):
    a = step.args[0]
    axis = _arg(step.args, step.kwargs, 1, "axis", -1)
    a_data = _tdata(a)
    shifted = a_data - a_data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out = exps / exps.sum(axis=axis, keepdims=True)
    step.saved = (a, axis, out)
    return _finish(step, out)


def _b_softmax(step, grad):
    a, axis, out = step.saved
    if _wants_grad(a):
        dot = np.sum(grad * out, axis=axis, keepdims=True)
        _acc(a, out * (grad - dot))


def _f_log_softmax(step):
    a = step.args[0]
    axis = _arg(step.args, step.kwargs, 1, "axis", -1)
    a_data = _tdata(a)
    shifted = a_data - a_data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_sum
    step.saved = (a, axis, np.exp(out))
    return _finish(step, out)


def _b_log_softmax(step, grad):
    a, axis, soft = step.saved
    if _wants_grad(a):
        _acc(a, grad - soft * grad.sum(axis=axis, keepdims=True))


def _f_softmax_cross_entropy(step):
    args, kwargs = step.args, step.kwargs
    logits, targets = args[0], args[1]
    axis = _arg(args, kwargs, 2, "axis", -1)
    reduction = _arg(args, kwargs, 3, "reduction", "mean")
    logits_data = _tdata(logits)
    target_data = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
    shifted = logits_data - logits_data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    sum_exps = exps.sum(axis=axis, keepdims=True)
    log_probs = shifted - np.log(sum_exps)
    soft = exps / sum_exps
    loss_data = -(target_data * log_probs).sum(axis=axis)
    if reduction == "mean":
        out = loss_data.mean()
        scale = 1.0 / (loss_data.size or 1)
    elif reduction == "sum":
        out = loss_data.sum()
        scale = 1.0
    else:
        out = loss_data
        scale = 1.0
    step.saved = (logits, target_data, soft, axis, reduction, scale, logits_data.ndim)
    return _finish(step, out)


def _b_softmax_cross_entropy(step, grad):
    logits, target_data, soft, axis, reduction, scale, ndim = step.saved
    if _wants_grad(logits):
        g = np.asarray(grad)
        if reduction == "none":
            g = np.expand_dims(g, axis % ndim)
        _acc(logits, (soft - target_data) * (g * scale))


# ----------------------------------------------------------------------
# replay kernels — reductions
# ----------------------------------------------------------------------
def _f_sum(step):
    a = step.args[0]
    axis = _arg(step.args, step.kwargs, 1, "axis")
    keepdims = _arg(step.args, step.kwargs, 2, "keepdims", False)
    a_data = _tdata(a)
    step.saved = (a, axis, keepdims, a_data.shape)
    return _finish(step, a_data.sum(axis=axis, keepdims=keepdims))


def _b_sum(step, grad):
    a, axis, keepdims, shape = step.saved
    if _wants_grad(a):
        g = np.asarray(grad, dtype=np.float64)
        g = _expand_reduced(g, axis, keepdims, len(shape))
        _acc(a, np.broadcast_to(g, shape))


def _f_mean(step):
    a = step.args[0]
    axis = _arg(step.args, step.kwargs, 1, "axis")
    keepdims = _arg(step.args, step.kwargs, 2, "keepdims", False)
    a_data = _tdata(a)
    if axis is None:
        count = a_data.size
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        count = 1
        for ax in axes:
            count *= a_data.shape[ax]
    step.saved = (a, axis, keepdims, a_data.shape, count)
    return _finish(step, a_data.mean(axis=axis, keepdims=keepdims))


def _b_mean(step, grad):
    a, axis, keepdims, shape, count = step.saved
    if _wants_grad(a):
        g = np.asarray(grad, dtype=np.float64) / count
        g = _expand_reduced(g, axis, keepdims, len(shape))
        _acc(a, np.broadcast_to(g, shape))


def _f_max(step):
    a = step.args[0]
    axis = _arg(step.args, step.kwargs, 1, "axis")
    keepdims = _arg(step.args, step.kwargs, 2, "keepdims", False)
    a_data = _tdata(a)
    out = a_data.max(axis=axis, keepdims=keepdims)
    step.saved = (a, axis, keepdims, a_data, out)
    return _finish(step, out)


def _b_max(step, grad):
    a, axis, keepdims, a_data, out = step.saved
    if not _wants_grad(a):
        return
    g = np.asarray(grad, dtype=np.float64)
    expanded = out
    if axis is not None and not keepdims:
        axes = axis if isinstance(axis, tuple) else (axis,)
        for ax in sorted(ax % a_data.ndim for ax in axes):
            g = np.expand_dims(g, ax)
            expanded = np.expand_dims(expanded, ax)
    mask = (a_data == expanded).astype(np.float64)
    mask_sum = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
    _acc(a, np.broadcast_to(g, a_data.shape) * mask / np.maximum(mask_sum, 1.0))


# ----------------------------------------------------------------------
# replay kernels — shape manipulation
# ----------------------------------------------------------------------
def _f_reshape(step):
    a = step.args[0]
    shape = _arg(step.args, step.kwargs, 1, "shape")
    a_data = _tdata(a)
    step.saved = (a, a_data.shape)
    return _finish(step, a_data.reshape(shape))


def _b_reshape(step, grad):
    a, shape = step.saved
    if _wants_grad(a):
        _acc(a, np.asarray(grad).reshape(shape))


def _f_transpose(step):
    a = step.args[0]
    axes = _arg(step.args, step.kwargs, 1, "axes")
    step.saved = (a, axes)
    return _finish(step, np.transpose(_tdata(a), axes))


def _b_transpose(step, grad):
    a, axes = step.saved
    if not _wants_grad(a):
        return
    if axes is None:
        _acc(a, np.transpose(grad))
    else:
        _acc(a, np.transpose(grad, np.argsort(axes)))


def _f_concat(step):
    tensors = step.args[0]
    axis = _arg(step.args, step.kwargs, 1, "axis", -1)
    arrays = [_tdata(t) for t in tensors]
    dtype = engine.get_dtype()
    if all(array.dtype == dtype for array in arrays):
        norm_axis = axis % arrays[0].ndim
        shape = list(arrays[0].shape)
        shape[norm_axis] = builtins_sum(array.shape[norm_axis] for array in arrays)
        out = np.concatenate(arrays, axis=axis, out=step.slab(tuple(shape), dtype))
    else:
        out = np.concatenate(arrays, axis=axis)
    sizes = [array.shape[axis] for array in arrays]
    step.saved = (tensors, axis, np.cumsum([0] + sizes))
    return _finish(step, out)


def _b_concat(step, grad):
    tensors, axis, offsets = step.saved
    grad = np.asarray(grad)
    for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
        if _wants_grad(tensor):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            _acc(tensor, grad[tuple(index)])


def _f_stack(step):
    tensors = step.args[0]
    axis = _arg(step.args, step.kwargs, 1, "axis", 0)
    step.saved = (tensors, axis)
    return _finish(step, np.stack([_tdata(t) for t in tensors], axis=axis))


def _b_stack(step, grad):
    tensors, axis = step.saved
    slices = np.moveaxis(np.asarray(grad), axis, 0)
    for tensor, piece in zip(tensors, slices):
        if _wants_grad(tensor):
            _acc(tensor, piece)


def _f_getitem(step):
    a, index = step.args
    a_data = _tdata(a)
    step.saved = (a, index, a_data)
    return _finish(step, a_data[index])


def _b_getitem(step, grad):
    a, index, a_data = step.saved
    if _wants_grad(a):
        full = np.zeros_like(a_data)
        np.add.at(full, index, grad)
        _acc(a, full)


# ----------------------------------------------------------------------
# replay kernels — gathers / scatters
# ----------------------------------------------------------------------
def _f_gather_rows(step):
    a, indices = step.args
    a_data = _tdata(a)
    indices = np.asarray(indices, dtype=np.int64)
    dtype = engine.get_dtype()
    if a_data.ndim == 2 and indices.ndim == 1 and a_data.dtype == dtype:
        out = np.take(
            a_data, indices, axis=0,
            out=step.slab((indices.shape[0], a_data.shape[1]), dtype), mode="clip",
        )
    else:
        out = a_data[indices]
    step.saved = (a, indices)
    return _finish(step, out)


def _b_gather_rows(step, grad):
    a, indices = step.saved
    if _wants_grad(a):
        _scatter_add_2d(_grad_buffer(a), indices, np.asarray(grad))


def _f_scatter_add_rows(step):
    base, indices, updates = step.args
    base_data, updates_data = _tdata(base), _tdata(updates)
    indices = np.asarray(indices, dtype=np.int64)
    out = base_data.copy()
    np.add.at(out, indices, updates_data)
    step.saved = (base, updates, indices)
    return _finish(step, out)


def _b_scatter_add_rows(step, grad):
    base, updates, indices = step.saved
    if _wants_grad(base):
        _acc(base, grad)
    if _wants_grad(updates):
        _acc(updates, np.asarray(grad)[indices])


def _f_gather_concat_rows(step):
    tensors, indices = step.args[0], step.args[1]
    arrays = [_tdata(t) for t in tensors]
    indices = np.asarray(indices, dtype=np.int64)
    count = indices.shape[0]
    width = arrays[0].shape[1]
    out = step.slab((count * len(arrays), width), arrays[0].dtype)
    for block, array in enumerate(arrays):
        np.take(
            array, indices, axis=0,
            out=out[block * count : (block + 1) * count], mode="clip",
        )
    step.saved = (tensors, indices, count)
    return _finish(step, out)


def _b_gather_concat_rows(step, grad):
    tensors, indices, count = step.saved
    grad = np.asarray(grad)
    for block, tensor in enumerate(tensors):
        if _wants_grad(tensor):
            _scatter_add_2d(
                _grad_buffer(tensor), indices, grad[block * count : (block + 1) * count]
            )


def _f_pair_feature_concat(step):
    u, v = step.args[0], step.args[1]
    interaction = _arg(step.args, step.kwargs, 2, "interaction", True)
    u_data, v_data = _tdata(u), _tdata(v)
    count, width = u_data.shape
    blocks = 3 if interaction else 2
    out = step.slab((count, blocks * width), u_data.dtype)
    out[:, :width] = u_data
    out[:, width : 2 * width] = v_data
    if interaction:
        np.multiply(u_data, v_data, out=out[:, 2 * width :])
    step.saved = (u, v, u_data, v_data, width, interaction)
    return _finish(step, out)


def _b_pair_feature_concat(step, grad):
    u, v, u_data, v_data, width, interaction = step.saved
    grad = np.asarray(grad)
    grad_u = grad[:, :width]
    grad_v = grad[:, width : 2 * width]
    if interaction:
        grad_uv = grad[:, 2 * width :]
        if _wants_grad(u):
            _acc(u, grad_u + grad_uv * v_data)
        if _wants_grad(v):
            _acc(v, grad_v + grad_uv * u_data)
    else:
        if _wants_grad(u):
            _acc(u, grad_u)
        if _wants_grad(v):
            _acc(v, grad_v)


def _f_broadcast_rows(step):
    row = step.args[0]
    num_rows = _arg(step.args, step.kwargs, 1, "num_rows")
    row_data = _tdata(row)
    step.saved = row
    return _finish(step, np.broadcast_to(row_data, (int(num_rows), row_data.shape[1])))


def _b_broadcast_rows(step, grad):
    if _wants_grad(step.saved):
        _acc(step.saved, np.asarray(grad).sum(axis=0, keepdims=True))


def _f_scatter_rows(step):
    updates = step.args[0]
    indices = np.asarray(step.args[1], dtype=np.int64)
    num_rows = _arg(step.args, step.kwargs, 2, "num_rows")
    updates_data = _tdata(updates)
    out = step.slab((int(num_rows), updates_data.shape[1]), updates_data.dtype)
    out.fill(0.0)
    out[indices] = updates_data
    step.saved = (updates, indices)
    return _finish(step, out)


def _b_scatter_rows(step, grad):
    updates, indices = step.saved
    if _wants_grad(updates):
        _acc(updates, np.asarray(grad)[indices])


# ----------------------------------------------------------------------
# replay kernels — losses / misc
# ----------------------------------------------------------------------
def _f_binary_cross_entropy_probs(step):
    args, kwargs = step.args, step.kwargs
    probabilities, targets = args[0], args[1]
    weights = _arg(args, kwargs, 2, "weights")
    reduction = _arg(args, kwargs, 3, "reduction", "mean")
    eps = _arg(args, kwargs, 4, "eps", 1e-7)
    return_terms = _arg(args, kwargs, 5, "return_terms", False)
    p = _tdata(probabilities)
    target_data = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
    clipped = np.clip(p, eps, 1.0 - eps)
    loss = -(target_data * np.log(clipped) + (1.0 - target_data) * np.log(1.0 - clipped))
    if weights is not None:
        weights = np.asarray(weights)
        loss = loss * weights
    if reduction == "mean":
        out = loss.mean()
        scale = 1.0 / loss.size
    elif reduction == "sum":
        out = loss.sum()
        scale = 1.0
    else:
        out = loss
        scale = 1.0
    step.saved = (probabilities, target_data, p, clipped, weights, eps, scale)
    node = _finish(step, out)
    if return_terms:
        return node, loss
    return node


def _b_binary_cross_entropy_probs(step, grad):
    probabilities, target_data, p, clipped, weights, eps, scale = step.saved
    if not _wants_grad(probabilities):
        return
    base = (1.0 - target_data) / (1.0 - clipped) - target_data / clipped
    base *= (p >= eps) & (p <= 1.0 - eps)
    if weights is not None:
        base *= weights
    _acc(probabilities, base * (np.asarray(grad) * scale))


def _f_clip(step):
    a, low, high = step.args[0], step.args[1], step.args[2]
    a_data = _tdata(a)
    step.saved = (a, (a_data >= low) & (a_data <= high))
    return _finish(step, np.clip(a_data, low, high))


def _b_clip(step, grad):
    a, mask = step.saved
    if _wants_grad(a):
        _acc(a, grad * mask)


def _f_where(step):
    condition, a, b = step.args
    condition = np.asarray(condition, dtype=bool)
    step.saved = (a, b, condition)
    return _finish(step, np.where(condition, _tdata(a), _tdata(b)))


def _b_where(step, grad):
    a, b, condition = step.saved
    if _wants_grad(a):
        _acc(a, grad * condition)
    if _wants_grad(b):
        _acc(b, grad * (~condition))


def _f_maximum(step):
    a, b = step.args
    a_data, b_data = _tdata(a), _tdata(b)
    step.saved = (a, b, a_data >= b_data)
    return _finish(step, np.maximum(a_data, b_data))


def _b_maximum(step, grad):
    a, b, mask = step.saved
    if _wants_grad(a):
        _acc(a, grad * mask)
    if _wants_grad(b):
        _acc(b, grad * (~mask))


def _f_dropout_mask_apply(step):
    a, mask, scale = step.args
    a_data = _tdata(a)
    mask = np.asarray(mask, dtype=np.float64)
    step.saved = (a, mask, scale)
    return _finish(step, a_data * mask * scale)


def _b_dropout_mask_apply(step, grad):
    a, mask, scale = step.saved
    if _wants_grad(a):
        _acc(a, grad * mask * scale)


# ----------------------------------------------------------------------
# replay kernels — sparse message passing
# ----------------------------------------------------------------------
def _f_spmm(step):
    matrix, features = step.args
    matrix = matrix.tocsr()
    f_data = _tdata(features)
    result_dtype = np.promote_types(matrix.dtype, f_data.dtype)
    if (
        _csr_matvecs is not None
        and result_dtype == engine.get_dtype()
        and f_data.flags.c_contiguous
        and f_data.ndim == 2
    ):
        out = step.slab((matrix.shape[0], f_data.shape[1]), result_dtype)
        out.fill(0.0)
        _csr_matvecs(
            matrix.shape[0],
            matrix.shape[1],
            f_data.shape[1],
            matrix.indptr,
            matrix.indices,
            matrix.data,
            f_data.ravel(),
            out.ravel(),
        )
    else:
        out = matrix @ f_data
    step.saved = (features, matrix)
    return _finish(step, out)


def _b_spmm(step, grad):
    features, matrix = step.saved
    if not _wants_grad(features):
        return
    grad = np.asarray(grad)
    # ``matrix.T`` of a CSR matrix is the CSC matrix sharing the same
    # indptr/indices/data, and scipy's ``csc @ dense`` dispatches to the
    # same ``csc_matvecs`` kernel — so accumulating into a zeroed scratch
    # slab is bit-identical to ``matrix.T @ grad`` without the per-replay
    # allocation or matrix-validation overhead.
    if (
        _csc_matvecs is not None
        and matrix.format == "csr"
        and matrix.dtype == grad.dtype
        and grad.flags.c_contiguous
        and grad.ndim == 2
    ):
        out = step.buffer("fg", (matrix.shape[1], grad.shape[1]), grad.dtype)
        out.fill(0.0)
        _csc_matvecs(
            matrix.shape[1],
            matrix.shape[0],
            grad.shape[1],
            matrix.indptr,
            matrix.indices,
            matrix.data,
            grad.ravel(),
            out.ravel(),
        )
        _acc(features, out)
    else:
        _acc(features, matrix.T @ grad)


def _f_segment_softmax_attend(step):
    # Every edge-sized intermediate lives in a persistent scratch slab and is
    # produced with ``out=`` — bitwise the same arithmetic as the eager
    # kernel (same ufuncs, same dtype promotion, same order) but with zero
    # large allocations per replay.
    args, kwargs = step.args, step.kwargs
    queries, keys, values = args[0], args[1], args[2]
    edge_queries = np.asarray(args[3], dtype=np.int64)
    edge_keys = np.asarray(args[4], dtype=np.int64)
    num_segments = _arg(args, kwargs, 5, "num_segments")
    eps = _arg(args, kwargs, 6, "eps", 1e-12)
    q_data, k_data, v_data = _tdata(queries), _tdata(keys), _tdata(values)

    count = edge_queries.shape[0]
    query_rows = np.take(
        q_data, edge_queries, axis=0,
        out=step.buffer("qr", (count, q_data.shape[1]), q_data.dtype), mode="clip",
    )
    key_rows = np.take(
        k_data, edge_keys, axis=0,
        out=step.buffer("kr", (count, k_data.shape[1]), k_data.dtype), mode="clip",
    )
    scores = np.einsum(
        "ed,ed->e", query_rows, key_rows,
        out=step.buffer("sc", (count,), np.result_type(q_data, k_data)),
    )
    max_per_segment = step.buffer("mx", (num_segments,), np.float64)
    max_per_segment.fill(-np.inf)
    np.maximum.at(max_per_segment, edge_queries, scores)
    max_per_segment[~np.isfinite(max_per_segment)] = 0.0
    # ``exp_scores`` carries the shifted → clipped → exponentiated chain.
    exp_scores = np.take(
        max_per_segment, edge_queries,
        out=step.buffer("ex", (count,), np.float64), mode="clip",
    )
    np.subtract(scores, exp_scores, out=exp_scores)
    clip_mask = np.greater_equal(
        exp_scores, -60.0, out=step.buffer("cl", (count,), np.bool_)
    )
    clip_hi = np.less_equal(
        exp_scores, 60.0, out=step.buffer("ch", (count,), np.bool_)
    )
    np.logical_and(clip_mask, clip_hi, out=clip_mask)
    np.clip(exp_scores, -60.0, 60.0, out=exp_scores)
    np.exp(exp_scores, out=exp_scores)
    denominator = np.bincount(edge_queries, weights=exp_scores, minlength=num_segments)
    inv_denominator = np.take(
        denominator, edge_queries,
        out=step.buffer("inv", (count,), np.float64), mode="clip",
    )
    np.add(inv_denominator, eps, out=inv_denominator)
    np.divide(1.0, inv_denominator, out=inv_denominator)
    attention = np.multiply(
        exp_scores, inv_denominator,
        out=step.buffer("att", (count,), np.float64),
    )
    value_rows = np.take(
        v_data, edge_keys, axis=0,
        out=step.buffer("vr", (count, v_data.shape[1]), v_data.dtype), mode="clip",
    )
    product = np.multiply(
        value_rows, attention[:, None],
        out=step.buffer("pr", value_rows.shape, np.result_type(attention, value_rows)),
    )
    out = step.slab((num_segments, v_data.shape[1]), v_data.dtype)
    out.fill(0.0)
    _scatter_add_2d(out, edge_queries, product)
    step.saved = (
        queries, keys, values, edge_queries, edge_keys,
        query_rows, key_rows, value_rows, exp_scores, inv_denominator,
        attention, clip_mask, num_segments,
    )
    return _finish(step, out)


def _b_segment_softmax_attend(step, grad):
    (queries, keys, values, edge_queries, edge_keys, query_rows, key_rows,
     value_rows, exp_scores, inv_denominator, attention, clip_mask,
     num_segments) = step.saved
    grad = np.asarray(grad)
    count = edge_queries.shape[0]
    grad_rows = np.take(
        grad, edge_queries, axis=0,
        out=step.buffer("gr", (count, grad.shape[1]), grad.dtype), mode="clip",
    )
    if _wants_grad(values):
        product = np.multiply(
            grad_rows, attention[:, None],
            out=step.buffer("pr", grad_rows.shape, np.result_type(attention, grad_rows)),
        )
        _scatter_add_2d(_grad_buffer(values), edge_keys, product)
    if not (_wants_grad(queries) or _wants_grad(keys)):
        return
    d_attention = np.einsum(
        "ed,ed->e", value_rows, grad_rows,
        out=step.buffer("da", (count,), np.result_type(value_rows, grad_rows)),
    )
    # ``d_scores`` carries weighted-sum → d_exp → clipped-score chain; the
    # sequence of ufuncs mirrors the eager expression term for term.
    d_scores = np.multiply(
        d_attention, exp_scores, out=step.buffer("ds", (count,), np.float64)
    )
    weighted = np.bincount(edge_queries, weights=d_scores, minlength=num_segments)
    np.take(weighted, edge_queries, out=d_scores, mode="clip")
    np.multiply(d_scores, inv_denominator, out=d_scores)
    np.subtract(d_attention, d_scores, out=d_scores)
    np.multiply(d_scores, inv_denominator, out=d_scores)
    np.multiply(d_scores, exp_scores, out=d_scores)
    np.multiply(d_scores, clip_mask, out=d_scores)
    if _wants_grad(queries):
        product = np.multiply(
            key_rows, d_scores[:, None],
            out=step.buffer("pr", key_rows.shape, np.result_type(d_scores, key_rows)),
        )
        _scatter_add_2d(_grad_buffer(queries), edge_queries, product)
    if _wants_grad(keys):
        product = np.multiply(
            query_rows, d_scores[:, None],
            out=step.buffer("pr", query_rows.shape, np.result_type(d_scores, query_rows)),
        )
        _scatter_add_2d(_grad_buffer(keys), edge_keys, product)


builtins_sum = sum  # the local reductions shadow nothing here, but be explicit


#: op name -> (replay forward, replay backward, op-hook name).  The hook name
#: matches the node ``op`` string ``Tensor._build`` reports for the eager op,
#: so profiler forward counts agree between modes.
KERNELS: Dict[str, Tuple[Callable, Callable, str]] = {
    "add": (_f_add, _b_add, "add"),
    "sub": (_f_sub, _b_sub, "sub"),
    "mul": (_f_mul, _b_mul, "mul"),
    "div": (_f_div, _b_div, "div"),
    "neg": (_f_neg, _b_neg, "neg"),
    "pow": (_f_pow, _b_pow, "pow"),
    "matmul": (_f_matmul, _b_matmul, "matmul"),
    "linear": (_f_linear, _b_linear, "linear"),
    "addmm": (_f_addmm, _b_addmm, "addmm"),
    "exp": (_f_exp, _b_exp, "exp"),
    "log": (_f_log, _b_log, "log"),
    "sqrt": (_f_sqrt, _b_sqrt, "sqrt"),
    "relu": (_f_relu, _b_relu, "relu"),
    "leaky_relu": (_f_leaky_relu, _b_leaky_relu, "leaky_relu"),
    "sigmoid": (_f_sigmoid, _b_sigmoid, "sigmoid"),
    "tanh": (_f_tanh, _b_tanh, "tanh"),
    "gated_tanh_mix": (_f_gated_tanh_mix, _b_gated_tanh_mix, "gated_tanh_mix"),
    "softplus": (_f_softplus, _b_softplus, "softplus"),
    "softmax": (_f_softmax, _b_softmax, "softmax"),
    "log_softmax": (_f_log_softmax, _b_log_softmax, "log_softmax"),
    "softmax_cross_entropy": (
        _f_softmax_cross_entropy, _b_softmax_cross_entropy, "softmax_cross_entropy"
    ),
    "sum": (_f_sum, _b_sum, "sum"),
    "mean": (_f_mean, _b_mean, "mean"),
    "max": (_f_max, _b_max, "max"),
    "reshape": (_f_reshape, _b_reshape, "reshape"),
    "transpose": (_f_transpose, _b_transpose, "transpose"),
    "concat": (_f_concat, _b_concat, "concat"),
    "stack": (_f_stack, _b_stack, "stack"),
    "pair_feature_concat": (
        _f_pair_feature_concat, _b_pair_feature_concat, "pair_feature_concat"
    ),
    "getitem": (_f_getitem, _b_getitem, "getitem"),
    "gather_rows": (_f_gather_rows, _b_gather_rows, "gather_rows"),
    "gather_concat_rows": (
        _f_gather_concat_rows, _b_gather_concat_rows, "gather_concat_rows"
    ),
    "scatter_add_rows": (_f_scatter_add_rows, _b_scatter_add_rows, "scatter_add_rows"),
    "broadcast_rows": (_f_broadcast_rows, _b_broadcast_rows, "broadcast_rows"),
    "scatter_rows": (_f_scatter_rows, _b_scatter_rows, "scatter_rows"),
    "binary_cross_entropy_probs": (
        _f_binary_cross_entropy_probs,
        _b_binary_cross_entropy_probs,
        "binary_cross_entropy_probs",
    ),
    "clip": (_f_clip, _b_clip, "clip"),
    "where": (_f_where, _b_where, "where"),
    "maximum": (_f_maximum, _b_maximum, "maximum"),
    "dropout_mask_apply": (_f_dropout_mask_apply, _b_dropout_mask_apply, "dropout"),
    "spmm": (_f_spmm, _b_spmm, "spmm"),
    "segment_softmax_attend": (
        _f_segment_softmax_attend, _b_segment_softmax_attend, "segment_softmax_attend"
    ),
}


# ----------------------------------------------------------------------
# input descriptors (the guard)
# ----------------------------------------------------------------------
def _iter_tensor_slots(args, kwargs):
    for value in args:
        if isinstance(value, Tensor):
            yield value
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, Tensor):
                    yield item
    if kwargs:
        for key in sorted(kwargs):
            value = kwargs[key]
            if isinstance(value, Tensor):
                yield value


def _describe_tensors(args, kwargs):
    return tuple(
        (getattr(t, "_trace_step", None), t.data.dtype.str, bool(t.requires_grad))
        for t in _iter_tensor_slots(args, kwargs)
    )


def _describe_arrays(args, kwargs):
    sig = []
    for value in args:
        if type(value) is np.ndarray:
            sig.append(value.dtype.str)
    if kwargs:
        for key in sorted(kwargs):
            value = kwargs[key]
            if type(value) is np.ndarray:
                sig.append(value.dtype.str)
    return tuple(sig)


# ----------------------------------------------------------------------
# runtime
# ----------------------------------------------------------------------
#: Only one runtime may patch the op modules at a time per process.
_active_runtime: Optional["TraceRuntime"] = None


class TraceRuntime:
    """Owns the program cache, the op wrappers and the replay state machine.

    One runtime per executor (the serial :class:`~repro.core.engine.
    StepExecutor`, or one per sharded worker process).  ``install()`` patches
    the op modules; :meth:`run_section` then records or replays each step.
    """

    def __init__(self, max_programs: int = 8) -> None:
        self.max_programs = int(max_programs)
        self.arena = Arena()
        self.stats = TraceStats()
        self._programs: "OrderedDict[Any, SteppedProgram]" = OrderedDict()
        self._untraceable_keys: set = set()
        self._mode: Optional[str] = None  # None | "record" | "replay"
        self._record_program: Optional[SteppedProgram] = None
        self._replay_program: Optional[SteppedProgram] = None
        self._cursor = 0
        self._event_cursor = 0
        self._patched: List[Tuple[Any, str, Any]] = []

    # ------------------------------------------------------------------
    # installation (same patch points as profiling.instrument_ops)
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Wrap every public op so record/replay can interpose.

        ``segment_mean`` is deliberately *not* wrapped: it is pure glue whose
        inner ``spmm`` call resolves through the patched module global, so
        wrapping it too would record the product twice.
        """
        global _active_runtime
        if self._patched:
            return
        if _active_runtime is not None:
            raise RuntimeError("another TraceRuntime is already installed in this process")
        import repro.baselines.minet
        import repro.baselines.ptupcdr
        import repro.core.complementing
        import repro.graph
        import repro.graph.kernels

        from ..graph import message_passing
        from . import ops as ops_module

        def wrap(name, original):
            def traced(*args, __rt=self, __name=name, __original=original, **kwargs):
                mode = __rt._mode
                if mode is None:
                    return __original(*args, **kwargs)
                if mode == "record":
                    result = __original(*args, **kwargs)
                    __rt._record_op(__name, args, kwargs, result)
                    return result
                return __rt._replay_op(__name, args, kwargs)

            traced.__wrapped__ = original
            return traced

        for name in ops_module.__all__:
            original = getattr(ops_module, name)
            self._patched.append((ops_module, name, original))
            setattr(ops_module, name, wrap(name, original))
        spmm_importers = (
            message_passing,
            repro.graph,
            repro.graph.kernels,
            repro.core.complementing,
            repro.baselines.minet,
            repro.baselines.ptupcdr,
        )
        original_spmm = message_passing.spmm
        traced_spmm = wrap("spmm", original_spmm)
        for module in spmm_importers:
            if getattr(module, "spmm", None) is original_spmm:
                self._patched.append((module, "spmm", original_spmm))
                setattr(module, "spmm", traced_spmm)
        original_attend = message_passing.segment_softmax_attend
        traced_attend = wrap("segment_softmax_attend", original_attend)
        for module in (message_passing, repro.graph, repro.core.complementing):
            if getattr(module, "segment_softmax_attend", None) is original_attend:
                self._patched.append((module, "segment_softmax_attend", original_attend))
                setattr(module, "segment_softmax_attend", traced_attend)
        engine.set_trace_backward_hook(self._on_backward)
        _active_runtime = self

    def uninstall(self) -> None:
        global _active_runtime
        if not self._patched:
            return
        engine.set_trace_backward_hook(None)
        for module, name, original in reversed(self._patched):
            setattr(module, name, original)
        self._patched.clear()
        if _active_runtime is self:
            _active_runtime = None

    # ------------------------------------------------------------------
    # sections
    # ------------------------------------------------------------------
    def run_section(self, key, fn, rng_sources: Tuple = ()):
        """Run ``fn`` traced: record on first sight of ``key``, else replay.

        ``rng_sources`` lists the ``np.random.Generator`` objects ``fn``
        consumes; their state is snapshotted before a replay attempt so a
        guard mismatch can rewind and re-run eagerly with identical draws.
        """
        if self._mode is not None:
            raise RuntimeError("traced sections do not nest")
        if key in self._untraceable_keys:
            self.stats.eager += 1
            return fn()
        program = self._programs.get(key)
        if program is None:
            return self._record_section(key, fn)
        return self._replay_section(key, program, fn, rng_sources)

    def _record_section(self, key, fn):
        program = SteppedProgram(key)
        self._mode = "record"
        self._record_program = program
        try:
            result = fn()
        finally:
            self._mode = None
            self._record_program = None
        if program.untraceable:
            self._untraceable_keys.add(key)
            self.stats.untraceable += 1
            self.stats.misses += 1
            return result
        self._programs[key] = program
        if len(self._programs) > self.max_programs:
            _, evicted = self._programs.popitem(last=False)
            self._release_program(evicted)
            self.stats.evictions += 1
        self.stats.misses += 1
        return result

    def _replay_section(self, key, program, fn, rng_sources):
        states = [copy.deepcopy(g.bit_generator.state) for g in rng_sources]
        self._mode = "replay"
        self._replay_program = program
        self._cursor = 0
        self._event_cursor = 0
        try:
            result = fn()
            if self._cursor != len(program.steps) or self._event_cursor != len(
                program.events
            ):
                raise TraceGuardMismatch(
                    "section ended before consuming the recorded program"
                )
        except TraceGuardMismatch as mismatch:
            self._mode = None
            self._replay_program = None
            self.stats.fallbacks += 1
            self.stats.last_fallback = str(mismatch)
            for generator, state in zip(rng_sources, states):
                generator.bit_generator.state = state
            del self._programs[key]
            self._release_program(program)
            return self._record_section(key, fn)
        except BaseException:
            self._mode = None
            self._replay_program = None
            raise
        self._mode = None
        self._replay_program = None
        self._programs.move_to_end(key)
        program.replays += 1
        self.stats.hits += 1
        return result

    def _release_program(self, program: SteppedProgram) -> None:
        for step in program.steps:
            self.arena.released((step.out_slab, step.grad))
            self.arena.released(step.scratch.values())
            step.out_slab = None
            step.grad = None
            step.scratch.clear()

    # ------------------------------------------------------------------
    # record mode
    # ------------------------------------------------------------------
    def _record_op(self, name, args, kwargs, result) -> None:
        pin = _take_pending_pin()
        program = self._record_program
        if program.untraceable:
            return
        kernel = KERNELS.get(name)
        if kernel is None:
            program.untraceable = True
            return
        node = result[0] if isinstance(result, tuple) else result
        step = OpStep(
            name,
            kernel[2],
            node,
            kernel[0],
            kernel[1],
            _describe_tensors(args, kwargs),
            _describe_arrays(args, kwargs),
            self.arena,
        )
        if pin is not None:
            # The eager pass already produced the value; move it into the
            # externally-owned buffer so the recording's slab is the pin.
            step.pinned = pin
            buf = pin(node.data.shape, node.data.dtype)
            if buf is not node.data:
                np.copyto(buf, node.data)
                node.data = buf
        node._trace_step = step
        program.steps.append(step)

    def _record_event(self, tensor: Tensor, grad) -> None:
        program = self._record_program
        if program.untraceable:
            return
        if grad is not None:
            program.untraceable = True
            return
        root_step = getattr(tensor, "_trace_step", None)
        if root_step is None:
            program.untraceable = True
            return
        steps: List[OpStep] = []
        for node in reversed(tensor._topological_order()):
            if node._backward is None:
                continue
            node_step = getattr(node, "_trace_step", None)
            if node_step is None:
                program.untraceable = True
                return
            steps.append(node_step)
        program.events.append(BackwardEvent(root_step, tuple(steps)))

    # ------------------------------------------------------------------
    # replay mode
    # ------------------------------------------------------------------
    def _replay_op(self, name, args, kwargs):
        # A pin armed for this op was captured on the recorded step; consume
        # the pending one so it cannot leak onto the next op.
        _take_pending_pin()
        program = self._replay_program
        index = self._cursor
        if index >= len(program.steps):
            raise TraceGuardMismatch(
                f"op sequence diverged: extra '{name}' beyond the recorded program"
            )
        step = program.steps[index]
        if step.name != name:
            raise TraceGuardMismatch(
                f"op sequence diverged at #{index}: recorded '{step.name}', got '{name}'"
            )
        expected = step.descriptors
        position = 0
        for tensor in _iter_tensor_slots(args, kwargs):
            if position >= len(expected):
                raise TraceGuardMismatch(f"'{name}' received extra tensor inputs")
            producer, dtype_str, requires = expected[position]
            if (
                getattr(tensor, "_trace_step", None) is not producer
                or tensor.data.dtype.str != dtype_str
                or bool(tensor.requires_grad) is not requires
            ):
                raise TraceGuardMismatch(
                    f"'{name}' input #{position} diverged from the recording"
                )
            position += 1
        if position != len(expected):
            raise TraceGuardMismatch(f"'{name}' received fewer tensor inputs")
        if step.array_sig != _describe_arrays(args, kwargs):
            raise TraceGuardMismatch(f"'{name}' raw-array operand dtypes diverged")
        self._cursor = index + 1
        step.args = args
        step.kwargs = kwargs
        value = step.forward(step)
        hook = engine._op_hook
        if hook is not None:
            hook(step.hook)
        return value

    # ------------------------------------------------------------------
    # backward interposition (engine._trace_backward_hook)
    # ------------------------------------------------------------------
    def _on_backward(self, tensor: Tensor, grad) -> bool:
        mode = self._mode
        if mode is None:
            return False
        if mode == "record":
            self._record_event(tensor, grad)
            return False
        return self._replay_event(tensor, grad)

    def _replay_event(self, tensor: Tensor, grad) -> bool:
        program = self._replay_program
        if self._event_cursor >= len(program.events):
            raise TraceGuardMismatch("extra backward call beyond the recorded program")
        event = program.events[self._event_cursor]
        if grad is not None or getattr(tensor, "_trace_step", None) is not event.root:
            raise TraceGuardMismatch("backward root diverged from the recording")
        self._event_cursor += 1
        root = event.root
        seed = root.grad_slab()
        seed.fill(1.0)
        root.has_grad = True
        timing_hook = engine._backward_hook
        if timing_hook is None:
            for step in event.steps:
                if step.has_grad:
                    step.backward(step, step.grad)
                    step.has_grad = False
                    step.recycle_grad()
        else:
            for step in event.steps:
                if step.has_grad:
                    started = time.perf_counter()
                    step.backward(step, step.grad)
                    timing_hook(step.hook, time.perf_counter() - started)
                    step.has_grad = False
                    step.recycle_grad()
        return True


# ----------------------------------------------------------------------
# model adapters
# ----------------------------------------------------------------------
def model_rng_sources(model) -> Tuple:
    """Generators the model consumes inside a training step (for rewind)."""
    sources = getattr(model, "trace_rng_sources", None)
    if callable(sources):
        return tuple(sources())
    return ()


def model_trace_signature(model) -> Tuple:
    """Structural section-key component contributed by the model."""
    signature = getattr(model, "trace_signature", None)
    if callable(signature):
        return tuple(signature())
    return (type(model).__name__,)


def check_traceable(model) -> None:
    """Refuse configurations whose per-step randomness cannot be rewound.

    Dropout draws from per-module generators invisible to the section's
    ``rng_sources``; after a guard fallback those draws could not be rewound
    and replayed training would diverge from never-traced eager training.
    """
    dropout = getattr(getattr(model, "config", None), "dropout", 0.0) or 0.0
    if dropout > 0.0 and getattr(model, "training", True):
        raise ValueError(
            "traced_steps requires dropout=0.0: per-module dropout draws cannot "
            "be rewound after a trace-guard fallback, which would break "
            "bit-identity with eager execution"
        )
