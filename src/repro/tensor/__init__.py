"""Numpy-backed automatic differentiation substrate.

Public surface:

* :class:`Tensor` — array with reverse-mode autograd.
* :mod:`repro.tensor.ops` — differentiable functional operations.
* :func:`set_seed` / :func:`get_rng` / :func:`spawn_rng` — seeded RNG helpers.
"""

from . import engine, ops
from .engine import engine_dtype, get_dtype, set_dtype
from .random import get_rng, set_seed, spawn_rng
from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "engine",
    "engine_dtype",
    "get_dtype",
    "set_dtype",
    "ops",
    "set_seed",
    "get_rng",
    "spawn_rng",
]
