"""Reverse-mode automatic differentiation on top of numpy arrays.

The paper's reference implementation relies on PyTorch.  In this offline
reproduction the whole neural substrate is rebuilt from scratch: ``Tensor``
wraps a numpy array, records the operations applied to it and can
back-propagate gradients through the resulting computation graph.

The design intentionally mirrors a very small subset of the PyTorch tensor
API (``backward``, ``grad``, ``detach``, operator overloading, ``reshape`` …)
so that model code in :mod:`repro.nn`, :mod:`repro.core` and
:mod:`repro.baselines` reads the way the paper's equations are written.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from . import engine

__all__ = ["Tensor", "as_tensor", "no_grad", "is_grad_enabled"]

ArrayLike = Union["Tensor", np.ndarray, float, int, Sequence]

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling graph construction (evaluation mode).

    Mirrors ``torch.no_grad``: inside the block newly created tensors do not
    track history, which keeps inference cheap and memory-flat.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def is_grad_enabled() -> bool:
    """Return whether newly created tensors will record history."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting.

    When an operand of shape ``shape`` was broadcast up to the shape of
    ``grad`` during the forward pass, the chain rule requires summing the
    incoming gradient over every broadcast axis.
    """
    if type(grad) is not np.ndarray:
        grad = np.asarray(grad, dtype=engine.get_dtype())
    if grad.shape == shape:
        return grad
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything convertible to a ``numpy.ndarray``.  Stored in the engine
        dtype (:func:`repro.tensor.engine.get_dtype`): ``float64`` by default
        for numeric parity with the paper tables, switchable to ``float32``
        for a cheaper hot path.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` when
        :meth:`backward` is called on a downstream scalar.
    """

    __array_priority__ = 100  # numpy defers binary operators to Tensor

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _op: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=engine.get_dtype())
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = tuple(_parents)
        self._op = _op
        self._topo_cache: Optional[List["Tensor"]] = None

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but severed from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a detached deep copy."""
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # graph construction helpers (used by repro.tensor.ops)
    # ------------------------------------------------------------------
    @staticmethod
    def _build(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        """Create a graph node for the result of an operation.

        ``backward`` receives the gradient flowing into the new node and is
        responsible for calling :meth:`_accumulate` on each parent.
        """
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        child = Tensor(
            data,
            requires_grad=requires,
            _parents=tuple(parents) if requires else (),
            _op=op,
        )
        if requires:
            child._backward = backward
        hook = engine._op_hook
        if hook is not None:
            hook(op)
        return child

    def _ensure_grad_buffer(self) -> np.ndarray:
        """Return ``self.grad``, creating a zero-filled pooled buffer if unset.

        Scatter-style backward rules write into the accumulation buffer
        directly, skipping the intermediate full-size temporary that
        :meth:`_accumulate` would otherwise copy from.
        """
        if self.grad is None:
            buffer = engine.buffer_pool.acquire(self.data.shape, self.data.dtype)
            buffer.fill(0.0)
            self.grad = buffer
        return self.grad

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` (matching shape after unbroadcast) into ``self.grad``."""
        if not self.requires_grad:
            return
        grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            # The tensor owns its gradient buffer exclusively, so it can be
            # recycled through the engine pool across backward passes.
            buffer = engine.buffer_pool.acquire(self.data.shape, self.data.dtype)
            np.copyto(buffer, grad)
            self.grad = buffer
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate through the computation graph rooted at ``self``.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to ``self``.  If
            omitted, ``self`` must be a scalar and the gradient defaults to
            one, matching PyTorch semantics.
        """
        if not self.requires_grad:
            raise RuntimeError(
                "backward() called on a tensor that does not require grad",
            )
        trace_hook = engine._trace_backward_hook
        if trace_hook is not None and trace_hook(self, grad):
            return
        pool = engine.buffer_pool
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar tensor, "
                    f"got shape {self.data.shape}"
                )
            if self.grad is None:
                # The all-ones seed can be written straight into a pooled
                # buffer instead of allocating ``np.ones_like`` per step.
                buffer = pool.acquire(self.data.shape, self.data.dtype)
                buffer.fill(1.0)
                self.grad = buffer
            else:
                self._accumulate(np.ones_like(self.data))
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                grad = np.broadcast_to(grad, self.data.shape).copy()
            self._accumulate(grad)

        timing_hook = engine._backward_hook
        for node in reversed(self._topological_order()):
            node_backward = node._backward
            if node_backward is not None and node.grad is not None:
                if timing_hook is not None:
                    started = time.perf_counter()
                    node_backward(node.grad)
                    timing_hook(node._op, time.perf_counter() - started)
                else:
                    node_backward(node.grad)
                # Intermediate gradients are fully propagated at this point
                # (topological order guarantees every consumer already ran),
                # so their buffers can be recycled for later nodes and for
                # the next same-shaped backward pass.  Leaf gradients
                # (``_backward is None``) stay, the optimiser reads them.
                pool.release(node.grad)
                node.grad = None

    def _topological_order(self) -> List["Tensor"]:
        """Iterative post-order traversal of the graph rooted at ``self``.

        The order is cached on the root: the graph is immutable once built,
        so a second ``backward`` over the same root (companion losses,
        gradient checks, repeated same-shape passes) skips the traversal.
        The cached list excludes the root itself (post-order guarantees it
        comes last) — storing ``self`` inside its own attribute would create
        a reference cycle and leave every step's graph to the cyclic GC
        instead of being freed by refcount.
        """
        if self._topo_cache is not None:
            return self._topo_cache + [self]
        order: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self._topo_cache = order[:-1]
        return order

    # ------------------------------------------------------------------
    # arithmetic operators
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.add(self, other)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.add(other, self)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.sub(self, other)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.sub(other, self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.mul(self, other)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.mul(other, self)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.div(self, other)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.div(other, self)

    def __neg__(self) -> "Tensor":
        from . import ops

        return ops.neg(self)

    def __pow__(self, exponent: float) -> "Tensor":
        from . import ops

        return ops.pow(self, exponent)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        from . import ops

        return ops.matmul(self, other)

    def __getitem__(self, index) -> "Tensor":
        from . import ops

        return ops.getitem(self, index)

    # ------------------------------------------------------------------
    # shape manipulation / reductions / activations (delegate to ops)
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        from . import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self, axes: Optional[Sequence[int]] = None) -> "Tensor":
        from . import ops

        return ops.transpose(self, axes)

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        from . import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        from . import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def exp(self) -> "Tensor":
        from . import ops

        return ops.exp(self)

    def log(self) -> "Tensor":
        from . import ops

        return ops.log(self)

    def sqrt(self) -> "Tensor":
        from . import ops

        return ops.sqrt(self)

    def relu(self) -> "Tensor":
        from . import ops

        return ops.relu(self)

    def sigmoid(self) -> "Tensor":
        from . import ops

        return ops.sigmoid(self)

    def tanh(self) -> "Tensor":
        from . import ops

        return ops.tanh(self)

    def softplus(self) -> "Tensor":
        from . import ops

        return ops.softplus(self)

    def clip(self, low: float, high: float) -> "Tensor":
        from . import ops

        return ops.clip(self, low, high)


def as_tensor(value: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Coerce ``value`` into a :class:`Tensor` (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)
