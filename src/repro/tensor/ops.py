"""Differentiable operations for :class:`repro.tensor.Tensor`.

Each function computes the forward result with numpy and registers a backward
closure that accumulates gradients into its operands.  Only the operations the
reproduction actually needs are implemented; the set covers everything used by
the heterogeneous graph encoder, the node-matching components, the
complementing attention and every baseline model.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from .tensor import ArrayLike, Tensor, as_tensor

__all__ = [
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "pow",
    "matmul",
    "linear",
    "addmm",
    "exp",
    "log",
    "sqrt",
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "gated_tanh_mix",
    "softplus",
    "softmax",
    "log_softmax",
    "softmax_cross_entropy",
    "sum",
    "mean",
    "max",
    "reshape",
    "transpose",
    "concat",
    "stack",
    "pair_feature_concat",
    "getitem",
    "gather_rows",
    "gather_concat_rows",
    "scatter_add_rows",
    "broadcast_rows",
    "scatter_rows",
    "binary_cross_entropy_probs",
    "clip",
    "where",
    "maximum",
    "dropout_mask_apply",
]

_EPS = 1e-12

def _load_csc_matvecs():
    """Import scipy's private CSC mat-vec kernel and self-check it once.

    ``scipy.sparse._sparsetools`` makes no stability promise, so the fast
    scatter path is only enabled if the kernel reproduces a known
    scatter-add on a tiny example; any import error, signature change or
    wrong result falls back to the public-API path.
    """
    try:  # pragma: no cover - exercised implicitly at import
        from scipy.sparse._sparsetools import csc_matvecs
    except ImportError:  # pragma: no cover - older/newer scipy layouts
        return None
    try:
        out = np.zeros((3, 2))
        indices = np.array([2, 0, 2], dtype=np.int64)
        updates = np.arange(6, dtype=np.float64).reshape(3, 2)
        csc_matvecs(
            3,
            3,
            2,
            np.arange(4, dtype=np.int64),
            indices,
            np.ones(3),
            updates.ravel(),
            out.ravel(),
        )
        expected = np.zeros((3, 2))
        np.add.at(expected, indices, updates)
        if not np.array_equal(out, expected):
            return None
    except Exception:  # pragma: no cover - changed private signature
        return None
    return csc_matvecs


_csc_matvecs = _load_csc_matvecs()


def _scatter_add_2d(buffer: np.ndarray, indices: np.ndarray, grad: np.ndarray) -> None:
    """``buffer[indices] += grad`` with repeated-index accumulation.

    ``np.add.at`` is correct but an order of magnitude slower than a sparse
    mat-vec at the sizes the models use, so for 2-D row scatters the update
    is expressed as ``P @ grad`` with ``P`` the one-hot scatter operator in
    CSC form (column ``k`` holds a single 1 at row ``indices[k]``).  When
    scipy's C kernel is importable it is called directly, accumulating into
    ``buffer`` with no temporary and no matrix-validation overhead.
    """
    if grad.ndim == 2 and indices.ndim == 1 and indices.shape[0] >= 32:
        count = indices.shape[0]
        if (
            _csc_matvecs is not None
            and buffer.flags.c_contiguous
            and buffer.dtype == grad.dtype
        ):
            if indices.dtype != np.int64:
                indices = indices.astype(np.int64)
            _csc_matvecs(
                buffer.shape[0],
                count,
                buffer.shape[1],
                np.arange(count + 1, dtype=np.int64),
                indices,
                np.ones(count, dtype=buffer.dtype),
                np.ascontiguousarray(grad).ravel(),
                buffer.ravel(),
            )
            return
        operator = sp.csc_matrix(
            (
                np.ones(count, dtype=grad.dtype),
                indices,
                np.arange(count + 1),
            ),
            shape=(buffer.shape[0], count),
        )
        buffer += operator @ grad
    else:
        np.add.at(buffer, indices, grad)


# ----------------------------------------------------------------------
# elementwise arithmetic
# ----------------------------------------------------------------------
def add(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data + b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad)
        b._accumulate(grad)

    return Tensor._build(out_data, (a, b), backward, "add")


def sub(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data - b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad)
        b._accumulate(-grad)

    return Tensor._build(out_data, (a, b), backward, "sub")


def mul(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data * b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * b.data)
        b._accumulate(grad * a.data)

    return Tensor._build(out_data, (a, b), backward, "mul")


def div(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data / b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad / b.data)
        b._accumulate(-grad * a.data / (b.data ** 2))

    return Tensor._build(out_data, (a, b), backward, "div")


def neg(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out_data = -a.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(-grad)

    return Tensor._build(out_data, (a,), backward, "neg")


def pow(a: ArrayLike, exponent: float) -> Tensor:  # noqa: A001 - mirrors Tensor.__pow__
    a = as_tensor(a)
    exponent = float(exponent)
    out_data = a.data ** exponent

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * exponent * (a.data ** (exponent - 1.0)))

    return Tensor._build(out_data, (a,), backward, "pow")


# ----------------------------------------------------------------------
# linear algebra
# ----------------------------------------------------------------------
def matmul(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data @ b.data

    def backward(grad: np.ndarray) -> None:
        a_data, b_data = a.data, b.data
        if a_data.ndim == 1 and b_data.ndim == 1:
            # inner product -> scalar gradient
            a._accumulate(grad * b_data)
            b._accumulate(grad * a_data)
            return
        if a_data.ndim == 1:
            a._accumulate(grad @ b_data.T)
            b._accumulate(np.outer(a_data, grad))
            return
        if b_data.ndim == 1:
            a._accumulate(np.outer(grad, b_data))
            b._accumulate(a_data.T @ grad)
            return
        a._accumulate(grad @ np.swapaxes(b_data, -1, -2))
        b._accumulate(np.swapaxes(a_data, -1, -2) @ grad)

    return Tensor._build(out_data, (a, b), backward, "matmul")


_LINEAR_ACTIVATIONS = (None, "relu", "sigmoid", "tanh")


def linear(
    x: ArrayLike,
    weight: ArrayLike,
    bias: Optional[ArrayLike] = None,
    activation: Optional[str] = None,
) -> Tensor:
    """Fused ``activation(x @ weight + bias)`` as a single graph node.

    The classic three-node chain (matmul, broadcast add, activation) is the
    single most frequent pattern in every model here; fusing it removes two
    graph nodes and two full-size gradient buffers per call.  ``activation``
    may be ``None``, ``"relu"``, ``"sigmoid"`` or ``"tanh"`` — the ones whose
    derivative is expressible from the forward output alone.
    """
    if activation not in _LINEAR_ACTIVATIONS:
        raise ValueError(
            f"fused linear supports activations {_LINEAR_ACTIVATIONS}, got '{activation}'"
        )
    x, weight = as_tensor(x), as_tensor(weight)
    if x.data.ndim != 2 or weight.data.ndim != 2:
        raise ValueError(
            f"fused linear expects 2-D operands, got {x.data.shape} @ {weight.data.shape}"
        )
    bias_tensor = as_tensor(bias) if bias is not None else None

    out_data = x.data @ weight.data
    if bias_tensor is not None:
        out_data = out_data + bias_tensor.data
    if activation == "relu":
        np.maximum(out_data, 0.0, out=out_data)
    elif activation == "sigmoid":
        out_data = _sigmoid_forward(out_data)
    elif activation == "tanh":
        np.tanh(out_data, out=out_data)

    parents = (x, weight) if bias_tensor is None else (x, weight, bias_tensor)

    def backward(grad: np.ndarray) -> None:
        if activation == "relu":
            head = grad * (out_data > 0)
        elif activation == "sigmoid":
            head = grad * out_data * (1.0 - out_data)
        elif activation == "tanh":
            head = grad * (1.0 - out_data ** 2)
        else:
            head = np.asarray(grad)
        if x.requires_grad:
            x._accumulate(head @ weight.data.T)
        if weight.requires_grad:
            weight._accumulate(x.data.T @ head)
        if bias_tensor is not None and bias_tensor.requires_grad:
            bias_tensor._accumulate(head.sum(axis=0))

    return Tensor._build(out_data, parents, backward, "linear")


def addmm(c: ArrayLike, a: ArrayLike, b: ArrayLike, beta: float = 1.0, alpha: float = 1.0) -> Tensor:
    """Fused ``beta * c + alpha * (a @ b)`` (mirrors ``torch.addmm``)."""
    c, a, b = as_tensor(c), as_tensor(a), as_tensor(b)
    if a.data.ndim != 2 or b.data.ndim != 2:
        raise ValueError(f"addmm expects 2-D matrices, got {a.data.shape} @ {b.data.shape}")
    beta, alpha = float(beta), float(alpha)
    product = a.data @ b.data
    if alpha != 1.0:
        product *= alpha
    out_data = product + (beta * c.data if beta != 1.0 else c.data)

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        if c.requires_grad:
            c._accumulate(grad if beta == 1.0 else beta * grad)
        if a.requires_grad:
            scaled = grad if alpha == 1.0 else alpha * grad
            a._accumulate(scaled @ b.data.T)
        if b.requires_grad:
            scaled = grad if alpha == 1.0 else alpha * grad
            b._accumulate(a.data.T @ scaled)

    return Tensor._build(out_data, (c, a, b), backward, "addmm")


# ----------------------------------------------------------------------
# unary nonlinearities
# ----------------------------------------------------------------------
def exp(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out_data = np.exp(a.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * out_data)

    return Tensor._build(out_data, (a,), backward, "exp")


def log(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out_data = np.log(np.maximum(a.data, _EPS))

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad / np.maximum(a.data, _EPS))

    return Tensor._build(out_data, (a,), backward, "log")


def sqrt(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out_data = np.sqrt(np.maximum(a.data, 0.0))

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * 0.5 / np.maximum(out_data, _EPS))

    return Tensor._build(out_data, (a,), backward, "sqrt")


def relu(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    mask = a.data > 0
    out_data = a.data * mask

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * mask)

    return Tensor._build(out_data, (a,), backward, "relu")


def leaky_relu(a: ArrayLike, negative_slope: float = 0.01) -> Tensor:
    a = as_tensor(a)
    mask = a.data > 0
    out_data = np.where(mask, a.data, negative_slope * a.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * np.where(mask, 1.0, negative_slope))

    return Tensor._build(out_data, (a,), backward, "leaky_relu")


def _sigmoid_forward(x: np.ndarray) -> np.ndarray:
    """Numerically stable sigmoid computed with a single ``exp``.

    ``exp(-|x|)`` never overflows, and both branches reduce to the textbook
    expressions ``1 / (1 + e^-x)`` (x >= 0) and ``e^x / (1 + e^x)`` (x < 0).
    """
    z = np.exp(-np.abs(x))
    return np.where(x >= 0, 1.0 / (1.0 + z), z / (1.0 + z))


def sigmoid(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out_data = _sigmoid_forward(a.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * out_data * (1.0 - out_data))

    return Tensor._build(out_data, (a,), backward, "sigmoid")


def gated_tanh_mix(first: ArrayLike, second: ArrayLike, gate_logits: ArrayLike) -> Tensor:
    """Fused ``tanh((1 - H) * first + H * second)`` with ``H = sigmoid(gate_logits)``.

    The fine-grained gate of Eq. 10 / Eq. 16 applies this to full user
    tables several times per step; fusing it collapses six elementwise graph
    nodes (sigmoid, two muls, two adds/subs, tanh) into one.
    """
    first, second, gate_logits = as_tensor(first), as_tensor(second), as_tensor(gate_logits)
    gate = _sigmoid_forward(gate_logits.data)
    out_data = np.tanh((1.0 - gate) * first.data + gate * second.data)

    def backward(grad: np.ndarray) -> None:
        base = grad * (1.0 - out_data ** 2)
        first._accumulate(base * (1.0 - gate))
        second._accumulate(base * gate)
        if gate_logits.requires_grad:
            gate_logits._accumulate(
                base * (second.data - first.data) * gate * (1.0 - gate)
            )

    return Tensor._build(out_data, (first, second, gate_logits), backward, "gated_tanh_mix")


def tanh(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out_data = np.tanh(a.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * (1.0 - out_data ** 2))

    return Tensor._build(out_data, (a,), backward, "tanh")


def softplus(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    x = a.data
    out_data = np.where(x > 30.0, x, np.log1p(np.exp(np.minimum(x, 30.0))))

    def backward(grad: np.ndarray) -> None:
        sig = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        a._accumulate(grad * sig)

    return Tensor._build(out_data, (a,), backward, "softplus")


def softmax(a: ArrayLike, axis: int = -1) -> Tensor:
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        # dL/dx = s * (g - sum(g * s))
        dot = np.sum(grad * out_data, axis=axis, keepdims=True)
        a._accumulate(out_data * (grad - dot))

    return Tensor._build(out_data, (a,), backward, "softmax")


def log_softmax(a: ArrayLike, axis: int = -1) -> Tensor:
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_sum
    soft = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._build(out_data, (a,), backward, "log_softmax")


def softmax_cross_entropy(
    logits: ArrayLike,
    targets: Union[Tensor, np.ndarray],
    axis: int = -1,
    reduction: str = "mean",
) -> Tensor:
    """Fused ``cross_entropy(softmax(logits), targets)`` as one graph node.

    ``targets`` is a constant probability distribution (one-hot or soft) of
    the same shape as ``logits``.  The fused backward rule is the classic
    ``softmax - targets``, which skips materialising the log-softmax graph.
    """
    logits = as_tensor(logits)
    target_data = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
    if target_data.shape != logits.data.shape:
        raise ValueError(
            f"targets shape {target_data.shape} must match logits shape {logits.data.shape}"
        )
    shifted = logits.data - logits.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    sum_exps = exps.sum(axis=axis, keepdims=True)
    log_probs = shifted - np.log(sum_exps)
    soft = exps / sum_exps
    loss_data = -(target_data * log_probs).sum(axis=axis)
    if reduction == "mean":
        out_data = loss_data.mean()
        scale = 1.0 / (loss_data.size or 1)  # NB: builtin max is shadowed here
    elif reduction == "sum":
        out_data = loss_data.sum()
        scale = 1.0
    elif reduction == "none":
        out_data = loss_data
        scale = 1.0
    else:
        raise ValueError(f"unknown reduction '{reduction}'")

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad)
        if reduction == "none":
            g = np.expand_dims(g, axis % logits.data.ndim)
        logits._accumulate((soft - target_data) * (g * scale))

    return Tensor._build(out_data, (logits,), backward, "softmax_cross_entropy")


# ----------------------------------------------------------------------
# reductions
# ----------------------------------------------------------------------
def sum(a: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    a = as_tensor(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad, dtype=np.float64)
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            for ax in sorted(ax % a.data.ndim for ax in axes):
                g = np.expand_dims(g, ax)
        a._accumulate(np.broadcast_to(g, a.data.shape))

    return Tensor._build(out_data, (a,), backward, "sum")


def mean(a: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    out_data = a.data.mean(axis=axis, keepdims=keepdims)
    if axis is None:
        count = a.data.size
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        count = 1
        for ax in axes:
            count *= a.data.shape[ax]

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad, dtype=np.float64) / count
        if axis is not None and not keepdims:
            axes_ = axis if isinstance(axis, tuple) else (axis,)
            for ax in sorted(ax % a.data.ndim for ax in axes_):
                g = np.expand_dims(g, ax)
        a._accumulate(np.broadcast_to(g, a.data.shape))

    return Tensor._build(out_data, (a,), backward, "mean")


def max(a: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    a = as_tensor(a)
    out_data = a.data.max(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad, dtype=np.float64)
        expanded = out_data
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            for ax in sorted(ax % a.data.ndim for ax in axes):
                g = np.expand_dims(g, ax)
                expanded = np.expand_dims(expanded, ax)
        mask = (a.data == expanded).astype(np.float64)
        # split gradient equally among ties to keep the op well defined
        mask_sum = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
        a._accumulate(np.broadcast_to(g, a.data.shape) * mask / np.maximum(mask_sum, 1.0))

    return Tensor._build(out_data, (a,), backward, "max")


# ----------------------------------------------------------------------
# shape manipulation
# ----------------------------------------------------------------------
def reshape(a: ArrayLike, shape: Tuple[int, ...]) -> Tensor:
    a = as_tensor(a)
    out_data = a.data.reshape(shape)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(np.asarray(grad).reshape(a.data.shape))

    return Tensor._build(out_data, (a,), backward, "reshape")


def transpose(a: ArrayLike, axes: Optional[Sequence[int]] = None) -> Tensor:
    a = as_tensor(a)
    out_data = np.transpose(a.data, axes)

    def backward(grad: np.ndarray) -> None:
        if axes is None:
            a._accumulate(np.transpose(grad))
        else:
            inverse = np.argsort(axes)
            a._accumulate(np.transpose(grad, inverse))

    return Tensor._build(out_data, (a,), backward, "transpose")


def concat(tensors: Sequence[ArrayLike], axis: int = -1) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(index)])

    return Tensor._build(out_data, tuple(tensors), backward, "concat")


def stack(tensors: Sequence[ArrayLike], axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        slices = np.moveaxis(grad, axis, 0)
        for tensor, piece in zip(tensors, slices):
            tensor._accumulate(piece)

    return Tensor._build(out_data, tuple(tensors), backward, "stack")


def getitem(a: ArrayLike, index) -> Tensor:
    a = as_tensor(a)
    out_data = a.data[index]

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(a.data)
        np.add.at(full, index, grad)
        a._accumulate(full)

    return Tensor._build(out_data, (a,), backward, "getitem")


def gather_rows(a: ArrayLike, indices: np.ndarray) -> Tensor:
    """Select rows ``a[indices]`` with a scatter-add backward pass.

    This is the embedding-lookup primitive: repeated indices accumulate
    gradient contributions, exactly like ``torch.nn.Embedding``.
    """
    a = as_tensor(a)
    indices = np.asarray(indices, dtype=np.int64)
    out_data = a.data[indices]

    def backward(grad: np.ndarray) -> None:
        if not a.requires_grad:
            return
        # Scatter straight into the accumulation buffer: no full-size
        # temporary, and the repeated-index sum runs as a sparse mat-vec.
        _scatter_add_2d(a._ensure_grad_buffer(), indices, np.asarray(grad))

    return Tensor._build(out_data, (a,), backward, "gather_rows")


def scatter_add_rows(base: ArrayLike, indices: np.ndarray, updates: ArrayLike) -> Tensor:
    """Return ``base`` with ``updates`` scatter-added at ``indices`` along axis 0."""
    base, updates = as_tensor(base), as_tensor(updates)
    indices = np.asarray(indices, dtype=np.int64)
    out_data = base.data.copy()
    np.add.at(out_data, indices, updates.data)

    def backward(grad: np.ndarray) -> None:
        base._accumulate(grad)
        updates._accumulate(np.asarray(grad)[indices])

    return Tensor._build(out_data, (base, updates), backward, "scatter_add_rows")


def gather_concat_rows(tensors: Sequence[ArrayLike], indices: np.ndarray) -> Tensor:
    """Fused ``concat([t[indices] for t in tensors], axis=0)`` as one node.

    The NMCDR loss gathers the same batch rows from every stage tensor and
    stacks them for the shared prediction head; doing it in one node writes
    each gather straight into the output block (no intermediate copies) and
    scatters each block straight into its parent's gradient buffer.
    """
    tensors = [as_tensor(t) for t in tensors]
    indices = np.asarray(indices, dtype=np.int64)
    if not tensors:
        raise ValueError("gather_concat_rows needs at least one tensor")
    count = indices.shape[0]
    width = tensors[0].data.shape[1]
    out_data = np.empty((count * len(tensors), width), dtype=tensors[0].data.dtype)
    for block, tensor in enumerate(tensors):
        if tensor.data.ndim != 2 or tensor.data.shape[1] != width:
            raise ValueError("gather_concat_rows tensors must share their column count")
        np.take(tensor.data, indices, axis=0, out=out_data[block * count : (block + 1) * count])

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        for block, tensor in enumerate(tensors):
            if tensor.requires_grad:
                _scatter_add_2d(
                    tensor._ensure_grad_buffer(),
                    indices,
                    grad[block * count : (block + 1) * count],
                )

    return Tensor._build(out_data, tuple(tensors), backward, "gather_concat_rows")


def pair_feature_concat(u: ArrayLike, v: ArrayLike, interaction: bool = True) -> Tensor:
    """Fused ``concat([u, v, u * v], axis=1)`` (the prediction-head input).

    One node instead of a mul plus a concat: each block is written straight
    into the output, and the backward rule adds the interaction term's
    product-rule contributions without materialising sliced copies first.
    """
    u, v = as_tensor(u), as_tensor(v)
    if u.data.shape != v.data.shape or u.data.ndim != 2:
        raise ValueError(
            f"pair_feature_concat expects equal (B, D) operands, got "
            f"{u.data.shape} and {v.data.shape}"
        )
    count, width = u.data.shape
    blocks = 3 if interaction else 2
    out_data = np.empty((count, blocks * width), dtype=u.data.dtype)
    out_data[:, :width] = u.data
    out_data[:, width : 2 * width] = v.data
    if interaction:
        np.multiply(u.data, v.data, out=out_data[:, 2 * width :])

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        grad_u = grad[:, :width]
        grad_v = grad[:, width : 2 * width]
        if interaction:
            grad_uv = grad[:, 2 * width :]
            u._accumulate(grad_u + grad_uv * v.data)
            v._accumulate(grad_v + grad_uv * u.data)
        else:
            u._accumulate(grad_u)
            v._accumulate(grad_v)

    return Tensor._build(out_data, (u, v), backward, "pair_feature_concat")


def binary_cross_entropy_probs(
    probabilities: ArrayLike,
    targets: Union[Tensor, np.ndarray],
    weights: Optional[np.ndarray] = None,
    reduction: str = "mean",
    eps: float = 1e-7,
    return_terms: bool = False,
) -> Tensor:
    """Fused binary cross-entropy on probabilities (Eq. 21), one graph node.

    Computes ``-(t * log(clip(p)) + (1 - t) * log(1 - clip(p)))`` with
    ``clip`` to ``[eps, 1 - eps]``, optionally scaled elementwise by the
    constant ``weights``, then reduced.  Replaces the nine-node clip/log/
    mul/add chain the losses module would otherwise build per call.

    ``return_terms=True`` additionally returns the already-materialised
    pre-reduction term array as ``(tensor, terms)`` — same values the
    reduction consumed, in their *natural* dtype (the promotion of
    probabilities against targets, typically float64 labels), at zero
    extra cost.  The sharded executor ships these raw terms to the parent
    process, which reassembles them in canonical batch order and applies
    this kernel's reduction; keeping the terms pre-cast is what makes that
    reduction bit-identical to the serial loss under the float32 engine.
    """
    probabilities = as_tensor(probabilities)
    target_data = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
    p = probabilities.data
    clipped = np.clip(p, eps, 1.0 - eps)
    loss = -(target_data * np.log(clipped) + (1.0 - target_data) * np.log(1.0 - clipped))
    if weights is not None:
        weights = np.asarray(weights)
        loss = loss * weights
    if reduction == "mean":
        out_data = loss.mean()
        scale = 1.0 / loss.size
    elif reduction == "sum":
        out_data = loss.sum()
        scale = 1.0
    elif reduction == "none":
        out_data = loss
        scale = 1.0
    else:
        raise ValueError(f"unknown reduction '{reduction}'")

    def backward(grad: np.ndarray) -> None:
        # d loss / d clipped, masked where the clip is inactive.
        base = (1.0 - target_data) / (1.0 - clipped) - target_data / clipped
        base *= (p >= eps) & (p <= 1.0 - eps)
        if weights is not None:
            base *= weights
        probabilities._accumulate(base * (np.asarray(grad) * scale))

    node = Tensor._build(out_data, (probabilities,), backward, "binary_cross_entropy_probs")
    if return_terms:
        return node, loss
    return node


def broadcast_rows(row: ArrayLike, num_rows: int) -> Tensor:
    """Broadcast a ``(1, D)`` row to ``(num_rows, D)`` without materialising it.

    Replaces the ``ones(N, 1) @ row`` idiom: the forward pass is a numpy
    broadcast view (zero copy) and the backward pass is a single column sum
    instead of a dense matmul against the ones matrix.
    """
    row = as_tensor(row)
    if row.data.ndim != 2 or row.data.shape[0] != 1:
        raise ValueError(f"broadcast_rows expects a (1, D) row, got {row.data.shape}")
    out_data = np.broadcast_to(row.data, (int(num_rows), row.data.shape[1]))

    def backward(grad: np.ndarray) -> None:
        row._accumulate(np.asarray(grad).sum(axis=0, keepdims=True))

    return Tensor._build(out_data, (row,), backward, "broadcast_rows")


def scatter_rows(updates: ArrayLike, indices: np.ndarray, num_rows: int) -> Tensor:
    """Place ``updates`` rows at ``indices`` of an otherwise-zero matrix.

    ``indices`` must be unique (each destination row receives at most one
    update) — the inter-matching overlap mapping guarantees that.  Replaces
    a dense ``scatter_matrix @ updates`` product with an O(K · D) assignment.
    """
    updates = as_tensor(updates)
    indices = np.asarray(indices, dtype=np.int64)
    if updates.data.ndim != 2 or indices.shape[0] != updates.data.shape[0]:
        raise ValueError(
            f"scatter_rows expects aligned (K, D) updates and K indices, got "
            f"{updates.data.shape} and {indices.shape}"
        )
    out_data = np.zeros((int(num_rows), updates.data.shape[1]), dtype=updates.data.dtype)
    out_data[indices] = updates.data

    def backward(grad: np.ndarray) -> None:
        updates._accumulate(np.asarray(grad)[indices])

    return Tensor._build(out_data, (updates,), backward, "scatter_rows")


# ----------------------------------------------------------------------
# misc
# ----------------------------------------------------------------------
def clip(a: ArrayLike, low: float, high: float) -> Tensor:
    a = as_tensor(a)
    out_data = np.clip(a.data, low, high)
    mask = (a.data >= low) & (a.data <= high)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * mask)

    return Tensor._build(out_data, (a,), backward, "clip")


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    condition = np.asarray(condition, dtype=bool)
    a, b = as_tensor(a), as_tensor(b)
    out_data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * condition)
        b._accumulate(grad * (~condition))

    return Tensor._build(out_data, (a, b), backward, "where")


def maximum(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = np.maximum(a.data, b.data)
    mask = a.data >= b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * mask)
        b._accumulate(grad * (~mask))

    return Tensor._build(out_data, (a, b), backward, "maximum")


def dropout_mask_apply(a: ArrayLike, mask: np.ndarray, scale: float) -> Tensor:
    """Apply a pre-sampled dropout mask with inverted-dropout scaling."""
    a = as_tensor(a)
    mask = np.asarray(mask, dtype=np.float64)
    out_data = a.data * mask * scale

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * mask * scale)

    return Tensor._build(out_data, (a,), backward, "dropout")
