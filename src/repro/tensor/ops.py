"""Differentiable operations for :class:`repro.tensor.Tensor`.

Each function computes the forward result with numpy and registers a backward
closure that accumulates gradients into its operands.  Only the operations the
reproduction actually needs are implemented; the set covers everything used by
the heterogeneous graph encoder, the node-matching components, the
complementing attention and every baseline model.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from .tensor import ArrayLike, Tensor, as_tensor

__all__ = [
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "pow",
    "matmul",
    "exp",
    "log",
    "sqrt",
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "softplus",
    "softmax",
    "log_softmax",
    "sum",
    "mean",
    "max",
    "reshape",
    "transpose",
    "concat",
    "stack",
    "getitem",
    "gather_rows",
    "scatter_add_rows",
    "clip",
    "where",
    "maximum",
    "dropout_mask_apply",
]

_EPS = 1e-12


# ----------------------------------------------------------------------
# elementwise arithmetic
# ----------------------------------------------------------------------
def add(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data + b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad)
        b._accumulate(grad)

    return Tensor._build(out_data, (a, b), backward, "add")


def sub(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data - b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad)
        b._accumulate(-grad)

    return Tensor._build(out_data, (a, b), backward, "sub")


def mul(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data * b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * b.data)
        b._accumulate(grad * a.data)

    return Tensor._build(out_data, (a, b), backward, "mul")


def div(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data / b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad / b.data)
        b._accumulate(-grad * a.data / (b.data ** 2))

    return Tensor._build(out_data, (a, b), backward, "div")


def neg(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out_data = -a.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(-grad)

    return Tensor._build(out_data, (a,), backward, "neg")


def pow(a: ArrayLike, exponent: float) -> Tensor:  # noqa: A001 - mirrors Tensor.__pow__
    a = as_tensor(a)
    exponent = float(exponent)
    out_data = a.data ** exponent

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * exponent * (a.data ** (exponent - 1.0)))

    return Tensor._build(out_data, (a,), backward, "pow")


# ----------------------------------------------------------------------
# linear algebra
# ----------------------------------------------------------------------
def matmul(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data @ b.data

    def backward(grad: np.ndarray) -> None:
        a_data, b_data = a.data, b.data
        if a_data.ndim == 1 and b_data.ndim == 1:
            # inner product -> scalar gradient
            a._accumulate(grad * b_data)
            b._accumulate(grad * a_data)
            return
        if a_data.ndim == 1:
            a._accumulate(grad @ b_data.T)
            b._accumulate(np.outer(a_data, grad))
            return
        if b_data.ndim == 1:
            a._accumulate(np.outer(grad, b_data))
            b._accumulate(a_data.T @ grad)
            return
        a._accumulate(grad @ np.swapaxes(b_data, -1, -2))
        b._accumulate(np.swapaxes(a_data, -1, -2) @ grad)

    return Tensor._build(out_data, (a, b), backward, "matmul")


# ----------------------------------------------------------------------
# unary nonlinearities
# ----------------------------------------------------------------------
def exp(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out_data = np.exp(a.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * out_data)

    return Tensor._build(out_data, (a,), backward, "exp")


def log(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out_data = np.log(np.maximum(a.data, _EPS))

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad / np.maximum(a.data, _EPS))

    return Tensor._build(out_data, (a,), backward, "log")


def sqrt(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out_data = np.sqrt(np.maximum(a.data, 0.0))

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * 0.5 / np.maximum(out_data, _EPS))

    return Tensor._build(out_data, (a,), backward, "sqrt")


def relu(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    mask = a.data > 0
    out_data = a.data * mask

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * mask)

    return Tensor._build(out_data, (a,), backward, "relu")


def leaky_relu(a: ArrayLike, negative_slope: float = 0.01) -> Tensor:
    a = as_tensor(a)
    mask = a.data > 0
    out_data = np.where(mask, a.data, negative_slope * a.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * np.where(mask, 1.0, negative_slope))

    return Tensor._build(out_data, (a,), backward, "leaky_relu")


def sigmoid(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    # numerically stable sigmoid
    out_data = np.where(
        a.data >= 0,
        1.0 / (1.0 + np.exp(-np.clip(a.data, -60.0, 60.0))),
        np.exp(np.clip(a.data, -60.0, 60.0)) / (1.0 + np.exp(np.clip(a.data, -60.0, 60.0))),
    )

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * out_data * (1.0 - out_data))

    return Tensor._build(out_data, (a,), backward, "sigmoid")


def tanh(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out_data = np.tanh(a.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * (1.0 - out_data ** 2))

    return Tensor._build(out_data, (a,), backward, "tanh")


def softplus(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    x = a.data
    out_data = np.where(x > 30.0, x, np.log1p(np.exp(np.minimum(x, 30.0))))

    def backward(grad: np.ndarray) -> None:
        sig = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        a._accumulate(grad * sig)

    return Tensor._build(out_data, (a,), backward, "softplus")


def softmax(a: ArrayLike, axis: int = -1) -> Tensor:
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        # dL/dx = s * (g - sum(g * s))
        dot = np.sum(grad * out_data, axis=axis, keepdims=True)
        a._accumulate(out_data * (grad - dot))

    return Tensor._build(out_data, (a,), backward, "softmax")


def log_softmax(a: ArrayLike, axis: int = -1) -> Tensor:
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_sum
    soft = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._build(out_data, (a,), backward, "log_softmax")


# ----------------------------------------------------------------------
# reductions
# ----------------------------------------------------------------------
def sum(a: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    a = as_tensor(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad, dtype=np.float64)
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            for ax in sorted(ax % a.data.ndim for ax in axes):
                g = np.expand_dims(g, ax)
        a._accumulate(np.broadcast_to(g, a.data.shape))

    return Tensor._build(out_data, (a,), backward, "sum")


def mean(a: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    out_data = a.data.mean(axis=axis, keepdims=keepdims)
    if axis is None:
        count = a.data.size
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        count = 1
        for ax in axes:
            count *= a.data.shape[ax]

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad, dtype=np.float64) / count
        if axis is not None and not keepdims:
            axes_ = axis if isinstance(axis, tuple) else (axis,)
            for ax in sorted(ax % a.data.ndim for ax in axes_):
                g = np.expand_dims(g, ax)
        a._accumulate(np.broadcast_to(g, a.data.shape))

    return Tensor._build(out_data, (a,), backward, "mean")


def max(a: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    a = as_tensor(a)
    out_data = a.data.max(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad, dtype=np.float64)
        expanded = out_data
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            for ax in sorted(ax % a.data.ndim for ax in axes):
                g = np.expand_dims(g, ax)
                expanded = np.expand_dims(expanded, ax)
        mask = (a.data == expanded).astype(np.float64)
        # split gradient equally among ties to keep the op well defined
        mask_sum = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
        a._accumulate(np.broadcast_to(g, a.data.shape) * mask / np.maximum(mask_sum, 1.0))

    return Tensor._build(out_data, (a,), backward, "max")


# ----------------------------------------------------------------------
# shape manipulation
# ----------------------------------------------------------------------
def reshape(a: ArrayLike, shape: Tuple[int, ...]) -> Tensor:
    a = as_tensor(a)
    out_data = a.data.reshape(shape)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(np.asarray(grad).reshape(a.data.shape))

    return Tensor._build(out_data, (a,), backward, "reshape")


def transpose(a: ArrayLike, axes: Optional[Sequence[int]] = None) -> Tensor:
    a = as_tensor(a)
    out_data = np.transpose(a.data, axes)

    def backward(grad: np.ndarray) -> None:
        if axes is None:
            a._accumulate(np.transpose(grad))
        else:
            inverse = np.argsort(axes)
            a._accumulate(np.transpose(grad, inverse))

    return Tensor._build(out_data, (a,), backward, "transpose")


def concat(tensors: Sequence[ArrayLike], axis: int = -1) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(index)])

    return Tensor._build(out_data, tuple(tensors), backward, "concat")


def stack(tensors: Sequence[ArrayLike], axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        slices = np.moveaxis(grad, axis, 0)
        for tensor, piece in zip(tensors, slices):
            tensor._accumulate(piece)

    return Tensor._build(out_data, tuple(tensors), backward, "stack")


def getitem(a: ArrayLike, index) -> Tensor:
    a = as_tensor(a)
    out_data = a.data[index]

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(a.data)
        np.add.at(full, index, grad)
        a._accumulate(full)

    return Tensor._build(out_data, (a,), backward, "getitem")


def gather_rows(a: ArrayLike, indices: np.ndarray) -> Tensor:
    """Select rows ``a[indices]`` with a scatter-add backward pass.

    This is the embedding-lookup primitive: repeated indices accumulate
    gradient contributions, exactly like ``torch.nn.Embedding``.
    """
    a = as_tensor(a)
    indices = np.asarray(indices, dtype=np.int64)
    out_data = a.data[indices]

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(a.data)
        np.add.at(full, indices, grad)
        a._accumulate(full)

    return Tensor._build(out_data, (a,), backward, "gather_rows")


def scatter_add_rows(base: ArrayLike, indices: np.ndarray, updates: ArrayLike) -> Tensor:
    """Return ``base`` with ``updates`` scatter-added at ``indices`` along axis 0."""
    base, updates = as_tensor(base), as_tensor(updates)
    indices = np.asarray(indices, dtype=np.int64)
    out_data = base.data.copy()
    np.add.at(out_data, indices, updates.data)

    def backward(grad: np.ndarray) -> None:
        base._accumulate(grad)
        updates._accumulate(np.asarray(grad)[indices])

    return Tensor._build(out_data, (base, updates), backward, "scatter_add_rows")


# ----------------------------------------------------------------------
# misc
# ----------------------------------------------------------------------
def clip(a: ArrayLike, low: float, high: float) -> Tensor:
    a = as_tensor(a)
    out_data = np.clip(a.data, low, high)
    mask = (a.data >= low) & (a.data <= high)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * mask)

    return Tensor._build(out_data, (a,), backward, "clip")


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    condition = np.asarray(condition, dtype=bool)
    a, b = as_tensor(a), as_tensor(b)
    out_data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * condition)
        b._accumulate(grad * (~condition))

    return Tensor._build(out_data, (a, b), backward, "where")


def maximum(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = np.maximum(a.data, b.data)
    mask = a.data >= b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * mask)
        b._accumulate(grad * (~mask))

    return Tensor._build(out_data, (a, b), backward, "maximum")


def dropout_mask_apply(a: ArrayLike, mask: np.ndarray, scale: float) -> Tensor:
    """Apply a pre-sampled dropout mask with inverted-dropout scaling."""
    a = as_tensor(a)
    mask = np.asarray(mask, dtype=np.float64)
    out_data = a.data * mask * scale

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * mask * scale)

    return Tensor._build(out_data, (a,), backward, "dropout")
