"""Shard partitioning for data-parallel training steps.

The sharded executor splits every joint step — ``{"a": Batch, "b": Batch}``
— into ``n_shards`` per-shard *micro-batches*.  The split is a pure function
of the example's **user id** (``(user_id + domain salt) % n_shards``), which
gives three properties the executor relies on:

* **Determinism** — the same joint batch always splits the same way, on any
  machine, for any worker start order; the fixed-seed equivalence gates
  compare against the serial executor so nothing about the split may depend
  on scheduling.
* **User locality** — all of one user's examples in a step land on the same
  shard, so the k-hop closure each shard materialises around its micro-batch
  is centred on a disjoint user set (the matching-pool closure is shared by
  construction; see :mod:`repro.core.sharded`).
* **Domain independence** — domains are sharded separately, so the two sides
  of an overlapped user may land on different shards; the per-shard subgraph
  plans already carry every overlap partner (one partner-closure round), so
  cross-shard pairs cost nothing extra and are gated by tests.

Each micro-batch preserves the *relative order* of its examples, and
:class:`ShardSplit` records the original position of every example so the
executor can reassemble per-example loss terms into the exact array the
serial executor reduces — the canonical-order reduction that keeps the loss
stream independent of ``n_shards``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from .dataloader import Batch

__all__ = ["domain_shard_salt", "shard_assignments", "ShardSplit", "split_joint_batch"]

_EMPTY = np.empty(0, dtype=np.int64)


def domain_shard_salt(key: str) -> int:
    """Deterministic per-domain offset decorrelating the two domains' maps.

    Synthetic and re-indexed real datasets tend to align overlapped users at
    the *same* id in both domains; an unsalted modulo would then always
    co-locate overlap partners, leaving the cross-shard-partner path (which
    the per-shard plan closure must handle) untested in practice.  Salting
    by the domain key makes partners landing on different shards the normal
    case, which the equivalence gates therefore exercise continuously.
    """
    return sum(key.encode("utf-8"))


def shard_assignments(users: np.ndarray, n_shards: int, salt: int = 0) -> np.ndarray:
    """Shard index of each user id (``(user_id + salt) % n_shards``).

    Modulo assignment keeps expected load balanced for arbitrary id ranges
    and is stable under graph growth: adding users never moves an existing
    user to a different shard.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    return (np.asarray(users, dtype=np.int64) + int(salt)) % n_shards


@dataclass
class ShardSplit:
    """One joint step split into per-shard micro-batches.

    Attributes
    ----------
    micro_batches:
        ``micro_batches[shard][key]`` is the shard's :class:`Batch` for
        domain ``key``; domains with no examples on a shard are absent from
        that shard's dict (a shard dict may be empty — the executor still
        dispatches it so the worker stays in lock-step).
    positions:
        ``positions[key][shard]`` holds the original row positions (within
        the step's full batch for domain ``key``) of the shard's examples,
        aligned with the micro-batch rows.  This is the scatter map used to
        reassemble per-example loss terms in canonical batch order.
    full_sizes:
        Number of examples of the step's full batch per domain (loss
        normalisation must use these, not the micro-batch sizes).
    """

    n_shards: int
    micro_batches: List[Dict[str, Batch]]
    positions: Dict[str, List[np.ndarray]] = field(default_factory=dict)
    full_sizes: Dict[str, int] = field(default_factory=dict)


def split_joint_batch(
    batches: Mapping[str, Optional[Batch]], n_shards: int
) -> ShardSplit:
    """Split a joint step into ``n_shards`` deterministic micro-batches."""
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    micro_batches: List[Dict[str, Batch]] = [{} for _ in range(n_shards)]
    positions: Dict[str, List[np.ndarray]] = {}
    full_sizes: Dict[str, int] = {}
    for key, batch in batches.items():
        if batch is None or len(batch) == 0:
            continue
        full_sizes[key] = len(batch)
        assignments = shard_assignments(
            batch.users,
            n_shards,
            salt=domain_shard_salt(key),
        )
        positions[key] = []
        for shard in range(n_shards):
            rows = np.flatnonzero(assignments == shard)
            positions[key].append(rows if rows.size else _EMPTY)
            if rows.size:
                micro_batches[shard][key] = Batch(
                    users=batch.users[rows],
                    items=batch.items[rows],
                    labels=batch.labels[rows],
                )
    return ShardSplit(
        n_shards=n_shards,
        micro_batches=micro_batches,
        positions=positions,
        full_sizes=full_sizes,
    )
