"""Mini-batch iteration over (user, item, label) training triples."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from .negative_sampling import NegativeSampler
from .split import DomainSplit

__all__ = ["Batch", "InteractionDataLoader", "build_training_examples"]


@dataclass
class Batch:
    """One training mini-batch of implicit-feedback examples."""

    users: np.ndarray
    items: np.ndarray
    labels: np.ndarray

    def __len__(self) -> int:
        return int(self.users.shape[0])


def build_training_examples(
    split: DomainSplit,
    negatives_per_positive: int = 1,
    rng: Optional[np.random.Generator] = None,
    vectorized_negatives: bool = True,
    sampler: Optional[NegativeSampler] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Materialise positives plus freshly sampled negatives as flat arrays.

    The paper trains with one sampled negative per observed positive; this
    helper is called once per epoch so negatives are re-drawn each time.
    ``vectorized_negatives=False`` selects the legacy per-user sampling loop
    (same rng stream as the seed implementation, kept for fixed-seed replays).
    ``sampler`` lets the caller reuse one :class:`NegativeSampler` across
    epochs (its seen-set CSR is a function of the immutable domain log, yet
    it used to be rebuilt every epoch); constructing the sampler consumes no
    rng, so passing one holding ``rng`` replays the exact same stream.
    """
    if sampler is None:
        sampler = NegativeSampler(split.domain, rng=rng)
    pos_users, pos_items = split.train_users, split.train_items
    negatives = sampler.sample_pairs(
        pos_users, negatives_per_positive, vectorized=vectorized_negatives
    )

    users = np.concatenate([pos_users, np.repeat(pos_users, negatives_per_positive)])
    items = np.concatenate([pos_items, negatives.reshape(-1)])
    labels = np.concatenate(
        [
            np.ones(pos_users.shape[0]),
            np.zeros(pos_users.shape[0] * negatives_per_positive),
        ]
    )
    users = users.astype(np.int64)
    items = items.astype(np.int64)
    # One O(n) range check per epoch re-establishes the invariant the
    # embedding layer no longer scans per batch: negative indices would
    # otherwise wrap silently during the table gathers.
    domain = split.domain
    if users.size:
        if users.min() < 0 or users.max() >= domain.num_users:
            raise IndexError(
                f"training example user index out of range [0, {domain.num_users})"
            )
        if items.min() < 0 or items.max() >= domain.num_items:
            raise IndexError(
                f"training example item index out of range [0, {domain.num_items})"
            )
    return users, items, labels.astype(np.float64)


class InteractionDataLoader:
    """Shuffling mini-batch iterator over implicit-feedback examples.

    Parameters
    ----------
    split:
        The leave-one-out split of one domain; only training interactions are
        used.
    batch_size:
        Number of examples per batch (positives and negatives mixed).
    negatives_per_positive:
        How many negative items to draw per training positive (1 in the paper).
    resample_negatives:
        When true (default), negatives are re-drawn at the start of every
        epoch, matching standard implicit-feedback training practice.
    vectorized_negatives:
        When true (default), negatives come from the vectorised rejection
        sampler; false replays the legacy per-user loop (seed rng stream).
    """

    def __init__(
        self,
        split: DomainSplit,
        batch_size: int = 512,
        negatives_per_positive: int = 1,
        resample_negatives: bool = True,
        rng: Optional[np.random.Generator] = None,
        vectorized_negatives: bool = True,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if negatives_per_positive <= 0:
            raise ValueError("negatives_per_positive must be positive")
        self.split = split
        self.batch_size = int(batch_size)
        self.negatives_per_positive = int(negatives_per_positive)
        self.resample_negatives = resample_negatives
        self.vectorized_negatives = vectorized_negatives
        self._rng = rng or np.random.default_rng(0)
        self._cached = None
        self._sampler: Optional[NegativeSampler] = None

    def _examples(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self.resample_negatives or self._cached is None:
            if self._sampler is None:
                # One seen-set CSR per loader lifetime instead of per epoch;
                # the sampler owns the loader's rng so the negative stream is
                # unchanged.
                self._sampler = NegativeSampler(self.split.domain, rng=self._rng)
            self._cached = build_training_examples(
                self.split,
                self.negatives_per_positive,
                rng=self._rng,
                vectorized_negatives=self.vectorized_negatives,
                sampler=self._sampler,
            )
        return self._cached

    def __iter__(self) -> Iterator[Batch]:
        users, items, labels = self._examples()
        order = self._rng.permutation(users.shape[0])
        for start in range(0, order.shape[0], self.batch_size):
            index = order[start : start + self.batch_size]
            yield Batch(users[index], items[index], labels[index])

    def __len__(self) -> int:
        total = self.split.num_train * (1 + self.negatives_per_positive)
        return (total + self.batch_size - 1) // self.batch_size
