"""Dataset statistics in the style of Table I of the paper."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .schema import CDRDataset, DomainData

__all__ = ["DomainStatistics", "scenario_statistics", "format_statistics_table"]


@dataclass
class DomainStatistics:
    """The Table-I columns for one domain."""

    name: str
    users: int
    items: int
    ratings: int
    density: float
    average_interactions_per_item: float

    @classmethod
    def from_domain(cls, domain: DomainData) -> "DomainStatistics":
        return cls(
            name=domain.name,
            users=domain.num_users,
            items=domain.num_items,
            ratings=domain.num_interactions,
            density=domain.density,
            average_interactions_per_item=domain.average_interactions_per_item,
        )


def scenario_statistics(dataset: CDRDataset) -> Dict:
    """Compute Table-I style statistics for one CDR scenario."""
    return {
        "scenario": dataset.name,
        "overlapping": dataset.num_overlapping,
        "domains": [
            DomainStatistics.from_domain(dataset.domain_a),
            DomainStatistics.from_domain(dataset.domain_b),
        ],
    }


def format_statistics_table(stats_list: List[Dict]) -> str:
    """Render statistics for several scenarios as an aligned text table."""
    header = (
        f"{'Scenario':<14}{'Domain':<10}{'Users':>8}{'Items':>8}{'Ratings':>10}"
        f"{'#Overlap':>10}{'Density':>10}{'Avg/item':>10}"
    )
    lines = [header, "-" * len(header)]
    for stats in stats_list:
        for index, domain in enumerate(stats["domains"]):
            overlap = str(stats["overlapping"]) if index == 0 else ""
            scenario = stats["scenario"] if index == 0 else ""
            lines.append(
                f"{scenario:<14}{domain.name:<10}{domain.users:>8}{domain.items:>8}"
                f"{domain.ratings:>10}{overlap:>10}{domain.density:>10.4%}"
                f"{domain.average_interactions_per_item:>10.2f}"
            )
    return "\n".join(lines)
