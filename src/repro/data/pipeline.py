"""Staged batch pipelines: per-epoch example materialisation behind an iterator.

The training engine consumes *joint steps* — ``{"a": Batch, "b": Batch}``
dicts with one mini-batch per domain (either may be missing once its loader
is exhausted; the multi-target trainer optimises whatever is present).  This
module owns everything that happens before a step runs: per-epoch example
materialisation, negative re-sampling, shuffling and batching, all hidden
behind :meth:`DataPipeline.epoch`.

Two implementations share that interface:

* :class:`SerialDataPipeline` — batches are produced on the caller's thread,
  exactly where the pre-engine trainer produced them.  This is the seed-parity
  default: fixed-seed runs are bit-identical to the historical loop.
* :class:`PrefetchDataPipeline` — a background worker thread runs the same
  producer loop one epoch ahead through a bounded queue (double buffering),
  so epoch-boundary materialisation and negative sampling overlap with the
  training step instead of serialising with it.

Determinism contract.  Each loader's rng is consumed *only* by the producer
(epoch by epoch, in epoch order), never by the consumer — handing the
producer loop to a worker thread therefore replays the exact serial rng
stream, and the prefetched batch sequence is identical to the serial one
under a fixed seed (gated in ``tests/test_data_pipeline.py``).  The worker
may run ahead of an early-stopped consumer (drawing negatives for epochs that
never train); that consumes loader rng the serial path would not have
consumed, but nothing observable reads those generators afterwards.

Failure contract.  Exceptions raised while materialising a batch (e.g. an
invalid index from ``build_training_examples``) are captured with their
traceback and re-raised on the consuming thread — the queue never hangs — and
:meth:`close` (also run by the context manager) always leaves the worker
thread dead, even when the consumer abandons the iterator mid-epoch.
"""

from __future__ import annotations

import queue
import sys
import threading
import time
import warnings
import weakref
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional

from .dataloader import Batch

__all__ = [
    "PipelineStats",
    "DataPipeline",
    "SerialDataPipeline",
    "PrefetchDataPipeline",
    "build_pipeline",
]

#: Queue item kinds used by the prefetch worker.
_STEP, _ERROR = 0, 2


def _release_worker(stop_event: threading.Event, step_queue: "queue.Queue") -> None:
    """Unblock and stop a prefetch worker without a pipeline reference.

    Registered through ``weakref.finalize`` when the worker starts, so a
    pipeline that is abandoned without :meth:`DataPipeline.close` — a crashed
    executor mid-epoch, a dropped trainer — still releases its thread at
    garbage collection or interpreter exit instead of leaving it spinning
    against a full queue.
    """
    stop_event.set()
    try:
        while True:
            step_queue.get_nowait()
    except queue.Empty:
        pass


def _queue_put(stop_event: threading.Event, step_queue: "queue.Queue", item) -> bool:
    """Enqueue unless shutdown was requested; never blocks forever."""
    while not stop_event.is_set():
        try:
            step_queue.put(item, timeout=0.05)
            return True
        except queue.Full:
            continue
    return False


def _prefetch_worker(
    pipeline_ref, stop_event, step_queue, num_epochs: int, start_epoch: int = 0
) -> None:
    """Worker-thread loop of :class:`PrefetchDataPipeline`.

    A module-level function on purpose: the thread must not hold a strong
    reference to the pipeline while it blocks on a full queue, otherwise an
    abandoned pipeline could never be garbage collected and its
    ``weakref.finalize`` cleanup could never fire.  The pipeline is re-taken
    from the weakref only for the duration of one epoch's materialisation.
    """
    try:
        for epoch in range(start_epoch, num_epochs):
            pipeline = pipeline_ref()
            if pipeline is None or stop_event.is_set():
                return
            # Materialise the whole epoch before enqueueing: the list build
            # (not the queue put) is where the epoch-boundary cost lives,
            # and it overlaps with the consumer's training steps.  Each
            # epoch's prep time travels with its payload and is only folded
            # into the stats when the consumer receives the epoch — prep
            # spent on epochs an early-stopped run never trains must not
            # inflate the recorded data cost.  The loader-rng snapshots
            # bracketing materialisation travel with the payload too: only
            # the worker may read the generators (it runs ahead of the
            # consumer), and a checkpoint needs the state *this* epoch was
            # drawn from, not wherever the lookahead currently is.
            prep_before = pipeline.stats.prep_seconds
            rng_before = pipeline._loader_rng_snapshot()
            steps = list(pipeline._produce_epoch())
            rng_after = pipeline._loader_rng_snapshot()
            epoch_prep = pipeline.stats.prep_seconds - prep_before
            pipeline.stats.prep_seconds = prep_before
            del pipeline  # the put below may block; don't pin the pipeline
            if not _queue_put(
                stop_event,
                step_queue,
                (_STEP, epoch, steps, epoch_prep, rng_before, rng_after),
            ):
                return
    except BaseException:  # noqa: BLE001 — forwarded verbatim to the consumer
        # Hand the *live* exception (with its traceback) to the consumer
        # instead of letting the queue starve it.
        _queue_put(stop_event, step_queue, (_ERROR, -1, sys.exc_info()))


@dataclass
class PipelineStats:
    """Where the data side of training spent its time.

    ``prep_seconds`` is producer-side: materialising examples, drawing
    negatives, slicing batches (for the prefetch pipeline this runs on the
    worker thread and only counts epochs the consumer actually received —
    lookahead work for epochs an early-stopped run never trains is excluded).  ``wait_seconds`` is consumer-side: how long the training
    loop actually blocked waiting for the next step.  Serial pipelines have
    ``wait_seconds == prep_seconds`` by construction; a well-overlapped
    prefetch run has ``wait_seconds`` close to zero while ``prep_seconds``
    stays the same — the difference is the wall time hidden behind training.
    """

    prep_seconds: float = 0.0
    wait_seconds: float = 0.0
    steps: int = 0
    epochs_started: int = 0


class DataPipeline:
    """Iterator protocol over joint per-step batch dicts, one epoch at a time.

    Subclasses implement :meth:`epoch`; :meth:`close` must be idempotent and
    safe to call mid-epoch.  Pipelines are context managers so the engine can
    guarantee shutdown on any exit path.
    """

    def __init__(self, loaders: Mapping[str, object]) -> None:
        self.loaders = dict(loaders)
        self.stats = PipelineStats()
        #: Loader rng states captured around the epoch currently being
        #: consumed: ``epoch_rng_before`` is the state the epoch's batch
        #: stream was generated from (a checkpoint that stores it plus a
        #: step count can replay the epoch exactly), ``epoch_rng_after`` is
        #: the state once the epoch was fully produced (the next epoch's
        #: ``before``).  For the prefetch pipeline these are captured on the
        #: worker thread around materialisation, so lookahead production
        #: never leaks into the snapshot of the epoch being trained.
        self.epoch_rng_before: Optional[Dict[str, dict]] = None
        self.epoch_rng_after: Optional[Dict[str, dict]] = None

    def _loader_rng_snapshot(self) -> Dict[str, dict]:
        """JSON-safe rng state of every rng-backed loader (fresh dicts).

        Best-effort by design: duck-typed loader stand-ins without an
        ``_rng`` (test doubles, deterministic replay loaders) are simply
        omitted.  Checkpoint *restore* compares the stored keys against the
        live loader dict and fails loudly on a mismatch, so a partial
        snapshot can never silently resume wrong.
        """
        states: Dict[str, dict] = {}
        for key, loader in self.loaders.items():
            rng = getattr(loader, "_rng", None)
            if rng is not None:
                states[key] = rng.bit_generator.state
        return states

    # -- interface ------------------------------------------------------
    def epoch(self, epoch_index: int) -> Iterator[Dict[str, Batch]]:
        """Yield the joint steps of one epoch (must be consumed in order)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release background resources; idempotent."""

    @property
    def steps_per_epoch(self) -> int:
        """Upper bound on joint steps per epoch (the longest loader)."""
        return max((len(loader) for loader in self.loaders.values()), default=0)

    # -- shared producer loop ------------------------------------------
    def _produce_epoch(self, timed: bool = True) -> Iterator[Dict[str, Batch]]:
        """One epoch of joint steps, replicating the historical trainer loop.

        Mirrors ``zip_longest`` over the per-domain loaders: steps continue
        until every loader is exhausted, exhausted domains are dropped from
        the step dict, and all-empty steps are skipped (never yielded).
        """
        started = time.perf_counter() if timed else 0.0
        iterators = {key: iter(loader) for key, loader in self.loaders.items()}
        if timed:
            self.stats.prep_seconds += time.perf_counter() - started
        while iterators:
            started = time.perf_counter() if timed else 0.0
            step: Dict[str, Batch] = {}
            for key in list(iterators):
                batch = next(iterators[key], None)
                if batch is None:
                    del iterators[key]
                elif len(batch) > 0:
                    step[key] = batch
            if timed:
                self.stats.prep_seconds += time.perf_counter() - started
            if not iterators and not step:
                break
            if step:
                self.stats.steps += 1
                yield step

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "DataPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialDataPipeline(DataPipeline):
    """Produce every batch on the consuming thread (seed-parity default)."""

    def epoch(self, epoch_index: int) -> Iterator[Dict[str, Batch]]:
        self.stats.epochs_started += 1
        self.epoch_rng_before = self._loader_rng_snapshot()
        self.epoch_rng_after = None
        for step in self._produce_epoch():
            # Serial production *is* the consumer's wait: everything the
            # producer spent, the training loop stood still for.
            self.stats.wait_seconds = self.stats.prep_seconds
            yield step
        self.stats.wait_seconds = self.stats.prep_seconds
        self.epoch_rng_after = self._loader_rng_snapshot()


class PrefetchDataPipeline(DataPipeline):
    """Epoch-granular double buffering on a background worker thread.

    The expensive data work is *per epoch* (example materialisation, negative
    re-sampling, the shuffle permutation) while per-step slicing is nearly
    free, so the worker materialises **whole epochs** of joint steps and the
    bounded queue holds epoch step-lists.  With ``depth=1`` (double
    buffering) the worker is building epoch ``e+1`` while the trainer
    consumes epoch ``e`` from memory — the epoch-boundary stall of the
    serial pipeline disappears, and the consumer pays one queue round-trip
    per epoch instead of per step.  A step-granular queue cannot hide this
    cost: a worker that may only run a few *steps* ahead reaches the next
    epoch boundary just before the consumer does.

    Parameters
    ----------
    loaders:
        Per-domain loaders; their rngs become worker-owned once the worker
        starts (the deterministic handoff — see the module docstring).
    num_epochs:
        How many epochs the worker should produce in total.  The consumer may
        stop earlier; :meth:`close` shuts the worker down regardless.
    depth:
        Queue capacity in *epochs* ahead of the one being consumed.
    """

    def __init__(
        self,
        loaders: Mapping[str, object],
        num_epochs: int,
        depth: int = 1,
        start_epoch: int = 0,
    ) -> None:
        super().__init__(loaders)
        if num_epochs < 1:
            raise ValueError("num_epochs must be positive")
        if depth < 1:
            raise ValueError("depth must be positive")
        if not 0 <= start_epoch < num_epochs:
            raise ValueError("start_epoch must be in [0, num_epochs)")
        self.num_epochs = int(num_epochs)
        self.start_epoch = int(start_epoch)
        self.depth = int(depth)
        self._queue: "queue.Queue" = queue.Queue(maxsize=self.depth)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._failure = None

    # -- worker side ----------------------------------------------------
    def _ensure_started(self) -> None:
        if self._thread is None:
            self._thread = threading.Thread(
                target=_prefetch_worker,
                args=(
                    weakref.ref(self),
                    self._stop,
                    self._queue,
                    self.num_epochs,
                    self.start_epoch,
                ),
                name="repro-data-prefetch",
                daemon=True,
            )
            self._thread.start()
            # Last-resort cleanup for abandoned pipelines; close() remains
            # the deterministic path (and is idempotent with this).
            weakref.finalize(self, _release_worker, self._stop, self._queue)

    # -- consumer side --------------------------------------------------
    def _get(self):
        started = time.perf_counter()
        try:
            while True:
                try:
                    return self._queue.get(timeout=0.05)
                except queue.Empty:
                    if self._thread is not None and not self._thread.is_alive():
                        # The worker died without posting anything (it only
                        # exits silently after _stop or after its final
                        # epoch was consumed).
                        raise RuntimeError(
                            "prefetch worker exited without completing the epoch"
                        )
        finally:
            self.stats.wait_seconds += time.perf_counter() - started

    def epoch(self, epoch_index: int) -> Iterator[Dict[str, Batch]]:
        if epoch_index >= self.num_epochs:
            raise IndexError(
                f"epoch {epoch_index} outside the {self.num_epochs}-epoch plan",
            )
        if self._stop.is_set():
            # A closed pipeline must fail fast: restarting the worker here
            # would spin against the stop flag and silently burn loader rng.
            raise RuntimeError("prefetch pipeline is closed")
        self._ensure_started()
        self.stats.epochs_started += 1
        item = self._get()
        if item[0] == _ERROR:
            self._failure = item[2]
            # close() is non-raising by contract (see below), so the
            # worker's original exception — re-raised with its own traceback
            # next — can never be masked by a shutdown failure.
            self.close()
            _, error, traceback = item[2]
            raise error.with_traceback(traceback)
        _, epoch, payload, epoch_prep, rng_before, rng_after = item
        if epoch != epoch_index:
            raise RuntimeError(
                f"pipeline epochs must be consumed in order: got epoch {epoch} "
                f"while iterating epoch {epoch_index}"
            )
        self.stats.prep_seconds += epoch_prep
        self.epoch_rng_before = rng_before
        self.epoch_rng_after = rng_after
        yield from payload

    def close(self) -> None:
        """Stop the worker and drain the queue; idempotent, never raises.

        ``close`` runs on every engine exit path *including* the one where
        the worker already crashed and its exception is propagating — so a
        shutdown problem here must never replace that traceback.  A worker
        that ignores the stop flag past the deadline (it cannot: every queue
        put is stop-checked) is reported as a warning, and the thread
        handle is dropped either way so repeated closes stay no-ops.
        """
        self._stop.set()
        thread = self._thread
        if thread is None:
            return
        # The worker may be blocked on a full queue; drain until it exits.
        deadline = time.monotonic() + 10.0
        while thread.is_alive() and time.monotonic() < deadline:
            try:
                while True:
                    self._queue.get_nowait()
            except queue.Empty:
                pass
            thread.join(timeout=0.05)
        if thread.is_alive():  # pragma: no cover — defensive, should not happen
            warnings.warn(
                "prefetch worker failed to shut down within 10s; "
                "abandoning the daemon thread",
                RuntimeWarning,
                stacklevel=2,
            )
        self._thread = None


def build_pipeline(
    loaders: Mapping[str, object],
    num_epochs: int,
    prefetch_epochs: int = 0,
    start_epoch: int = 0,
) -> DataPipeline:
    """Pipeline factory used by the training engine.

    ``prefetch_epochs=0`` selects the serial (seed-parity) pipeline; any
    positive value enables the background worker buffering that many epochs
    ahead (``1`` = classic double buffering).  ``start_epoch`` makes the
    producer begin at a later epoch (checkpoint resume); the serial pipeline
    needs no configuration for this — its epochs are produced on demand.
    """
    if prefetch_epochs < 0:
        raise ValueError("prefetch_epochs must be >= 0")
    if prefetch_epochs == 0:
        return SerialDataPipeline(loaders)
    return PrefetchDataPipeline(
        loaders,
        num_epochs=num_epochs,
        depth=prefetch_epochs,
        start_epoch=start_epoch,
    )
