"""Persistence for generated CDR datasets.

Synthetic scenarios are cheap to regenerate, but persisting them is useful for
(a) sharing the exact data behind a reported number and (b) wiring externally
preprocessed interaction logs into the pipeline.  Datasets are stored as a
single ``.npz`` archive holding both domains' arrays plus a small JSON blob of
names and metadata.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from .schema import CDRDataset, DomainData

__all__ = ["save_dataset", "load_dataset"]

_FORMAT_VERSION = 1


def _domain_arrays(prefix: str, domain: DomainData) -> dict:
    return {
        f"{prefix}_users": domain.users,
        f"{prefix}_items": domain.items,
        f"{prefix}_timestamps": domain.timestamps,
        f"{prefix}_global_user_ids": domain.global_user_ids,
    }


def save_dataset(dataset: CDRDataset, path: Union[str, Path]) -> Path:
    """Serialise ``dataset`` to ``path`` (``.npz`` appended if missing).

    Only the interaction data and identifying metadata are stored; generator
    internals kept in ``dataset.metadata`` (latent factors, specs) are not
    persisted because they are not needed to train or evaluate models.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)

    header = {
        "format_version": _FORMAT_VERSION,
        "name": dataset.name,
        "domain_a": {
            "name": dataset.domain_a.name,
            "num_users": dataset.domain_a.num_users,
            "num_items": dataset.domain_a.num_items,
        },
        "domain_b": {
            "name": dataset.domain_b.name,
            "num_users": dataset.domain_b.num_users,
            "num_items": dataset.domain_b.num_items,
        },
    }
    arrays = {
        "header": np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
    }
    arrays.update(_domain_arrays("a", dataset.domain_a))
    arrays.update(_domain_arrays("b", dataset.domain_b))
    np.savez_compressed(path, **arrays)
    return path


def load_dataset(path: Union[str, Path]) -> CDRDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(".npz")
    if not path.exists():
        raise FileNotFoundError(f"dataset file not found: {path}")

    with np.load(path) as archive:
        header = json.loads(bytes(archive["header"].tobytes()).decode("utf-8"))
        if header.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported dataset format version {header.get('format_version')}"
            )
        domains = {}
        for prefix in ("a", "b"):
            info = header[f"domain_{prefix}"]
            domains[prefix] = DomainData(
                name=info["name"],
                num_users=int(info["num_users"]),
                num_items=int(info["num_items"]),
                users=archive[f"{prefix}_users"],
                items=archive[f"{prefix}_items"],
                timestamps=archive[f"{prefix}_timestamps"],
                global_user_ids=archive[f"{prefix}_global_user_ids"],
            )
    return CDRDataset(header["name"], domains["a"], domains["b"])
