"""Negative sampling for training and for the 1-plus-199 ranking protocol.

The paper fixes "the negative sampling number ... as 1 for training and 199
for validation and test".  Negatives are always items the user has *not*
interacted with in the full log of that domain.

Training negatives are drawn by a **vectorised rejection sampler**: one
candidate matrix is drawn for the whole batch, collisions with the user→items
CSR (and within-row duplicates) are masked with a single sorted-key lookup
and redrawn.  Users whose histories nearly saturate the catalogue fall back
to an exact per-user draw over the materialised unseen set — rejection odds
degrade exactly when enumerating the complement is cheap.  The legacy
per-user loop is kept as ``vectorized=False`` so fixed-seed replays recorded
against it (the numeric-parity suite) remain reproducible.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

import numpy as np

from .schema import DomainData
from .split import DomainSplit

__all__ = ["NegativeSampler", "build_ranking_candidates"]

#: Seen-fraction above which the exact complement draw replaces rejection.
_SATURATION_FRACTION = 0.5

#: Redraw rounds before the stragglers are handed to the exact fallback.
_MAX_REJECTION_ROUNDS = 32


class NegativeSampler:
    """Sample negative items uniformly from each user's non-interacted items."""

    def __init__(
        self,
        domain: DomainData,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.num_items = domain.num_items
        self.num_users = domain.num_users
        self._rng = rng or np.random.default_rng(0)

        # User-major CSR of the full interaction log: `_seen_items[_indptr[u]:
        # _indptr[u+1]]` are the (sorted, deduplicated) items of user `u`.
        users = np.asarray(domain.users, dtype=np.int64)
        items = np.asarray(domain.items, dtype=np.int64)
        keys = np.unique(users * np.int64(self.num_items) + items)
        seen_users = keys // self.num_items
        self._seen_items = (keys % self.num_items).astype(np.int64)
        self._seen_counts = np.bincount(
            seen_users,
            minlength=self.num_users,
        ).astype(np.int64)
        self._indptr = np.concatenate(
            ([0], np.cumsum(self._seen_counts)),
        ).astype(np.int64)
        #: Sorted combined (user, item) keys for O(log E) membership tests.
        self._seen_keys = keys

    def interacted(self, user: int) -> Set[int]:
        """Items the user has interacted with anywhere in the log."""
        user = int(user)
        if not 0 <= user < self.num_users:
            return set()
        return set(
            self._seen_items[self._indptr[user] : self._indptr[user + 1]].tolist(),
        )

    def seen_counts(self, users: np.ndarray) -> np.ndarray:
        """Per-user interaction counts (vectorised ``len(interacted(u))``)."""
        users = np.asarray(users, dtype=np.int64)
        if users.size and (users.min() < 0 or users.max() >= self.num_users):
            raise ValueError(f"user index out of range [0, {self.num_users})")
        return self._seen_counts[users]

    def _seen_slice(self, user: int) -> np.ndarray:
        return self._seen_items[self._indptr[user] : self._indptr[user + 1]]

    def sample_for_user(self, user: int, count: int) -> np.ndarray:
        """Sample ``count`` negatives for ``user`` (without replacement when possible)."""
        user = int(user)
        seen = self.interacted(user)
        available = self.num_items - len(seen)
        if available <= 0:
            raise ValueError(
                f"user {user} has interacted with every item; cannot sample negatives",
            )
        if count <= 0:
            raise ValueError("count must be positive")

        if available <= count:
            # Degenerate small-catalogue case: return all unseen items (may be < count).
            negatives = np.array(
                [item for item in range(self.num_items) if item not in seen], dtype=np.int64
            )
            return negatives

        negatives = set()
        # Rejection sampling is fast because catalogues are much larger than
        # per-user histories in every scenario we generate.
        while len(negatives) < count:
            draws = self._rng.integers(
                0,
                self.num_items,
                size=2 * (count - len(negatives)),
            )
            for item in draws:
                item = int(item)
                if item not in seen and item not in negatives:
                    negatives.add(item)
                    if len(negatives) == count:
                        break
        return np.asarray(sorted(negatives), dtype=np.int64)

    def _sample_exact(self, user: int, count: int) -> np.ndarray:
        """Exact draw over the materialised unseen set (near-saturated users)."""
        unseen = np.setdiff1d(
            np.arange(self.num_items, dtype=np.int64), self._seen_slice(user), assume_unique=True
        )
        if unseen.size < count:
            raise ValueError(
                f"user {user} has only {unseen.size} non-interacted items; cannot sample {count}"
            )
        return np.sort(self._rng.choice(unseen, size=count, replace=False))

    def sample_pairs(
        self,
        users: np.ndarray,
        negatives_per_positive: int = 1,
        vectorized: bool = True,
    ) -> np.ndarray:
        """Sample one batch of training negatives, one row per (positive, k) pair.

        Every row holds ``negatives_per_positive`` distinct unseen items of
        that row's user, sorted ascending.  ``vectorized=False`` replays the
        legacy per-user loop (identical rng consumption to the seed
        implementation — the numeric-parity suite depends on it).
        """
        users = np.asarray(users, dtype=np.int64)
        count = int(negatives_per_positive)
        if count <= 0:
            raise ValueError("count must be positive")
        out = np.empty((users.shape[0], count), dtype=np.int64)
        if users.size == 0:
            return out

        if not vectorized:
            for row, user in enumerate(users):
                out[row] = self.sample_for_user(int(user), count)
            return out

        if users.min() < 0 or users.max() >= self.num_users:
            raise ValueError(f"user index out of range [0, {self.num_users})")
        seen_counts = self._seen_counts[users]
        if ((self.num_items - seen_counts) <= 0).any():
            bad = int(users[(self.num_items - seen_counts) <= 0][0])
            raise ValueError(
                f"user {bad} has interacted with every item; cannot sample negatives",
            )

        # Near-saturated rows go straight to the exact complement draw; the
        # rejection loop would thrash exactly where the complement is small.
        exact_rows = np.where(
            (seen_counts >= self.num_items * _SATURATION_FRACTION)
            | (self.num_items - seen_counts <= count)
        )[0]
        for row in exact_rows:
            out[row] = self._sample_exact(int(users[row]), count)

        rows = np.setdiff1d(np.arange(users.shape[0]), exact_rows, assume_unique=True)
        if rows.size == 0:
            return out
        batch_users = users[rows]
        candidates = self._rng.integers(
            0,
            self.num_items,
            size=(rows.size, count),
            dtype=np.int64,
        )
        pending = np.ones(rows.size, dtype=bool)
        for _ in range(_MAX_REJECTION_ROUNDS):
            keys = batch_users[
                pending,
                None,
            ] * np.int64(self.num_items) + candidates[pending]
            position = np.searchsorted(self._seen_keys, keys)
            position = np.minimum(position, max(self._seen_keys.size - 1, 0))
            collision = (
                (self._seen_keys[position] == keys)
                if self._seen_keys.size
                else np.zeros_like(keys, dtype=bool)
            )
            if count > 1:
                # Distinct-within-row check via a sorted view of each row.
                block = candidates[pending]
                order = np.argsort(block, axis=1, kind="stable")
                ranked = np.take_along_axis(block, order, axis=1)
                dup_sorted = np.zeros_like(collision)
                dup_sorted[:, 1:] = ranked[:, 1:] == ranked[:, :-1]
                duplicate = np.zeros_like(collision)
                np.put_along_axis(duplicate, order, dup_sorted, axis=1)
                bad = collision | duplicate
            else:
                bad = collision
            if not bad.any():
                pending[:] = False
                break
            redraw_rows = np.where(pending)[0][bad.any(axis=1)]
            block = candidates[pending]
            block[bad] = self._rng.integers(0, self.num_items, size=int(bad.sum()), dtype=np.int64)
            candidates[pending] = block
            still = np.zeros(rows.size, dtype=bool)
            still[redraw_rows] = True
            pending = still
        for row in np.where(pending)[0]:
            # Pathological stragglers (dense rows the loop kept re-colliding):
            # resolve them exactly rather than looping forever.
            candidates[row] = self._sample_exact(int(batch_users[row]), count)
        if count > 1:
            candidates = np.sort(candidates, axis=1)
        out[rows] = candidates
        return out


def build_ranking_candidates(
    split: DomainSplit,
    num_negatives: int = 199,
    rng: Optional[np.random.Generator] = None,
    subset: str = "test",
) -> Tuple[np.ndarray, np.ndarray]:
    """Build the 1-positive + ``num_negatives``-negative candidate lists.

    Returns
    -------
    users:
        Array of shape ``(n_eval_users,)``.
    candidates:
        Array of shape ``(n_eval_users, 1 + num_negatives)`` whose first column
        is the ground-truth positive item.
    """
    if subset not in {"test", "valid"}:
        raise ValueError("subset must be 'test' or 'valid'")
    users = split.test_users if subset == "test" else split.valid_users
    positives = split.test_items if subset == "test" else split.valid_items

    sampler = NegativeSampler(split.domain, rng=rng)
    if users.size:
        # The scaled-down synthetic catalogues may be smaller than the paper's
        # 199 negatives; clamp to what every evaluated user can actually
        # supply so the candidate matrix stays rectangular and duplicate-free.
        max_seen = int(sampler.seen_counts(users).max())
        available = split.domain.num_items - max_seen - 1
        num_negatives = max(1, min(num_negatives, available))

    candidate_rows = []
    for user, positive in zip(users, positives):
        negatives = sampler.sample_for_user(int(user), num_negatives)
        candidate_rows.append(np.concatenate([[positive], negatives[:num_negatives]]))
    if not candidate_rows:
        return np.zeros(
            0,
            dtype=np.int64,
        ), np.zeros((0, num_negatives + 1), dtype=np.int64)
    return np.asarray(users, dtype=np.int64), np.asarray(candidate_rows, dtype=np.int64)
