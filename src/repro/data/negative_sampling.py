"""Negative sampling for training and for the 1-plus-199 ranking protocol.

The paper fixes "the negative sampling number ... as 1 for training and 199
for validation and test".  Negatives are always items the user has *not*
interacted with in the full log of that domain.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

import numpy as np

from .schema import DomainData
from .split import DomainSplit

__all__ = ["NegativeSampler", "build_ranking_candidates"]


class NegativeSampler:
    """Sample negative items uniformly from each user's non-interacted items."""

    def __init__(self, domain: DomainData, rng: Optional[np.random.Generator] = None) -> None:
        self.num_items = domain.num_items
        self._rng = rng or np.random.default_rng(0)
        self._interacted: Dict[int, Set[int]] = {}
        for user, item in zip(domain.users, domain.items):
            self._interacted.setdefault(int(user), set()).add(int(item))

    def interacted(self, user: int) -> Set[int]:
        """Items the user has interacted with anywhere in the log."""
        return self._interacted.get(int(user), set())

    def sample_for_user(self, user: int, count: int) -> np.ndarray:
        """Sample ``count`` negatives for ``user`` (without replacement when possible)."""
        seen = self._interacted.get(int(user), set())
        available = self.num_items - len(seen)
        if available <= 0:
            raise ValueError(f"user {user} has interacted with every item; cannot sample negatives")
        if count <= 0:
            raise ValueError("count must be positive")

        if available <= count:
            # Degenerate small-catalogue case: return all unseen items (may be < count).
            negatives = np.array(
                [item for item in range(self.num_items) if item not in seen], dtype=np.int64
            )
            return negatives

        negatives = set()
        # Rejection sampling is fast because catalogues are much larger than
        # per-user histories in every scenario we generate.
        while len(negatives) < count:
            draws = self._rng.integers(0, self.num_items, size=2 * (count - len(negatives)))
            for item in draws:
                item = int(item)
                if item not in seen and item not in negatives:
                    negatives.add(item)
                    if len(negatives) == count:
                        break
        return np.asarray(sorted(negatives), dtype=np.int64)

    def sample_pairs(
        self,
        users: np.ndarray,
        negatives_per_positive: int = 1,
    ) -> np.ndarray:
        """Sample one batch of training negatives, one row per (positive, k) pair."""
        users = np.asarray(users, dtype=np.int64)
        out = np.empty((users.shape[0], negatives_per_positive), dtype=np.int64)
        for row, user in enumerate(users):
            out[row] = self.sample_for_user(int(user), negatives_per_positive)
        return out


def build_ranking_candidates(
    split: DomainSplit,
    num_negatives: int = 199,
    rng: Optional[np.random.Generator] = None,
    subset: str = "test",
) -> Tuple[np.ndarray, np.ndarray]:
    """Build the 1-positive + ``num_negatives``-negative candidate lists.

    Returns
    -------
    users:
        Array of shape ``(n_eval_users,)``.
    candidates:
        Array of shape ``(n_eval_users, 1 + num_negatives)`` whose first column
        is the ground-truth positive item.
    """
    if subset not in {"test", "valid"}:
        raise ValueError("subset must be 'test' or 'valid'")
    users = split.test_users if subset == "test" else split.valid_users
    positives = split.test_items if subset == "test" else split.valid_items

    sampler = NegativeSampler(split.domain, rng=rng)
    if users.size:
        # The scaled-down synthetic catalogues may be smaller than the paper's
        # 199 negatives; clamp to what every evaluated user can actually
        # supply so the candidate matrix stays rectangular and duplicate-free.
        max_seen = max(len(sampler.interacted(int(user))) for user in users)
        available = split.domain.num_items - max_seen - 1
        num_negatives = max(1, min(num_negatives, available))

    candidate_rows = []
    for user, positive in zip(users, positives):
        negatives = sampler.sample_for_user(int(user), num_negatives)
        candidate_rows.append(np.concatenate([[positive], negatives[:num_negatives]]))
    if not candidate_rows:
        return np.zeros(0, dtype=np.int64), np.zeros((0, num_negatives + 1), dtype=np.int64)
    return np.asarray(users, dtype=np.int64), np.asarray(candidate_rows, dtype=np.int64)
