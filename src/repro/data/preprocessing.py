"""Preprocessing: minimum-interaction filtering and index compaction.

Section III.E.2 notes "we remove the user with less than 5 interactions for
each dataset"; :func:`filter_min_interactions` applies the same rule to the
synthetic domains (and is exercised by the density-sweep bench, where heavy
downsampling can push users below the threshold).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .schema import CDRDataset, DomainData

__all__ = ["filter_min_interactions", "compact_items", "preprocess_scenario"]


def filter_min_interactions(
    domain: DomainData,
    min_interactions: int = 5,
) -> DomainData:
    """Drop users with fewer than ``min_interactions`` interactions and reindex."""
    if min_interactions < 0:
        raise ValueError("min_interactions must be non-negative")
    degrees = domain.user_degrees()
    kept_users = np.where(degrees >= min_interactions)[0]
    if kept_users.size == 0:
        raise ValueError(
            f"domain '{domain.name}': no user has >= {min_interactions} interactions"
        )
    remap = -np.ones(domain.num_users, dtype=np.int64)
    remap[kept_users] = np.arange(kept_users.size)

    mask = remap[domain.users] >= 0
    return DomainData(
        name=domain.name,
        num_users=int(kept_users.size),
        num_items=domain.num_items,
        users=remap[domain.users[mask]],
        items=domain.items[mask],
        timestamps=domain.timestamps[mask],
        global_user_ids=domain.global_user_ids[kept_users],
    )


def compact_items(domain: DomainData) -> Tuple[DomainData, np.ndarray]:
    """Drop items with zero interactions and reindex; returns (domain, kept item ids)."""
    degrees = domain.item_degrees()
    kept_items = np.where(degrees > 0)[0]
    remap = -np.ones(domain.num_items, dtype=np.int64)
    remap[kept_items] = np.arange(kept_items.size)
    new_domain = DomainData(
        name=domain.name,
        num_users=domain.num_users,
        num_items=int(kept_items.size),
        users=domain.users,
        items=remap[domain.items],
        timestamps=domain.timestamps,
        global_user_ids=domain.global_user_ids,
    )
    return new_domain, kept_items


def preprocess_scenario(dataset: CDRDataset, min_interactions: int = 5) -> CDRDataset:
    """Apply the paper's preprocessing to both domains of a scenario."""
    domain_a = filter_min_interactions(dataset.domain_a, min_interactions)
    domain_b = filter_min_interactions(dataset.domain_b, min_interactions)
    domain_a, _ = compact_items(domain_a)
    domain_b, _ = compact_items(domain_b)
    return CDRDataset(dataset.name, domain_a, domain_b, dict(dataset.metadata))
