"""Registry of the four CDR scenarios evaluated in the paper (Table I).

The paper's scenarios are "Music–Movie", "Cloth–Sport", "Phone–Elec" (Amazon)
and "Loan–Fund" (MYbank).  Because the raw datasets are not available offline,
each scenario is synthesised at a reduced scale with its qualitative shape
preserved:

* relative user/item counts between the two domains,
* relative density (Loan–Fund is an order of magnitude denser than Amazon),
* average interactions per item (Sec. III.B.4(ii) uses this to explain where
  NMCDR's improvement is largest: Phone–Elec and Cloth–Sport have few
  interactions per item, Loan–Fund has many),
* a realistic overlapped-user count.

``load_scenario(name, scale=...)`` returns a ready-to-use :class:`CDRDataset`.
"""

from __future__ import annotations

from typing import Dict, List

from .schema import CDRDataset
from .synthetic import DomainSpec, ScenarioSpec, generate_scenario

__all__ = ["SCENARIO_NAMES", "scenario_spec", "load_scenario", "paper_table1_reference"]

SCENARIO_NAMES = ("music_movie", "cloth_sport", "phone_elec", "loan_fund")

#: Reference statistics reported in Table I of the paper (full-scale datasets).
_PAPER_TABLE1 = {
    "music_movie": {
        "domains": [
            {"name": "Music", "users": 50841, "items": 43858, "ratings": 713740, "density": 0.0003},
            {"name": "Movie", "users": 87875, "items": 38643, "ratings": 1184889, "density": 0.0003},
        ],
        "overlapping": 15081,
    },
    "cloth_sport": {
        "domains": [
            {"name": "Cloth", "users": 27519, "items": 9481, "ratings": 161010, "density": 0.0006},
            {"name": "Sport", "users": 107984, "items": 40460, "ratings": 851553, "density": 0.0002},
        ],
        "overlapping": 16337,
    },
    "phone_elec": {
        "domains": [
            {"name": "Phone", "users": 41829, "items": 17943, "ratings": 194121, "density": 0.0003},
            {"name": "Elec", "users": 27328, "items": 12655, "ratings": 170426, "density": 0.0005},
        ],
        "overlapping": 7857,
    },
    "loan_fund": {
        "domains": [
            {"name": "Loan", "users": 147837, "items": 1488, "ratings": 304409, "density": 0.0014},
            {"name": "Fund", "users": 65257, "items": 1319, "ratings": 86281, "density": 0.0010},
        ],
        "overlapping": 6530,
    },
}


def paper_table1_reference(name: str) -> Dict:
    """Return the paper-reported Table I statistics for a scenario."""
    key = name.lower()
    if key not in _PAPER_TABLE1:
        raise KeyError(f"unknown scenario '{name}'; known: {SCENARIO_NAMES}")
    return _PAPER_TABLE1[key]


def scenario_spec(name: str, scale: float = 1.0, seed: int = 7) -> ScenarioSpec:
    """Build the synthetic :class:`ScenarioSpec` for a named scenario.

    ``scale`` multiplies the (already reduced) default user counts; tests use
    ``scale < 1`` for speed, the benches use the default 1.0.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    key = name.lower()

    def _users(count: int) -> int:
        return max(30, int(round(count * scale)))

    def _items(count: int) -> int:
        return max(25, int(round(count * scale)))

    if key == "music_movie":
        domain_a = DomainSpec(
            "Music",
            _users(420),
            _items(240),
            mean_interactions_per_user=10.0,
        )
        domain_b = DomainSpec(
            "Movie",
            _users(520),
            _items(170),
            mean_interactions_per_user=13.0,
        )
        overlap = max(10, int(round(130 * scale)))
        return ScenarioSpec("music_movie", domain_a, domain_b, overlap, seed=seed)
    if key == "cloth_sport":
        domain_a = DomainSpec(
            "Cloth",
            _users(320),
            _items(130),
            mean_interactions_per_user=7.0,
        )
        domain_b = DomainSpec(
            "Sport",
            _users(540),
            _items(260),
            mean_interactions_per_user=8.0,
        )
        overlap = max(10, int(round(150 * scale)))
        return ScenarioSpec("cloth_sport", domain_a, domain_b, overlap, seed=seed + 1)
    if key == "phone_elec":
        domain_a = DomainSpec(
            "Phone",
            _users(360),
            _items(190),
            mean_interactions_per_user=7.0,
        )
        domain_b = DomainSpec(
            "Elec",
            _users(310),
            _items(150),
            mean_interactions_per_user=8.0,
        )
        overlap = max(10, int(round(90 * scale)))
        return ScenarioSpec("phone_elec", domain_a, domain_b, overlap, seed=seed + 2)
    if key == "loan_fund":
        domain_a = DomainSpec(
            "Loan",
            _users(600),
            _items(45),
            mean_interactions_per_user=11.0,
        )
        domain_b = DomainSpec(
            "Fund",
            _users(340),
            _items(38),
            mean_interactions_per_user=8.0,
        )
        overlap = max(10, int(round(70 * scale)))
        return ScenarioSpec("loan_fund", domain_a, domain_b, overlap, seed=seed + 3)
    raise KeyError(f"unknown scenario '{name}'; known: {SCENARIO_NAMES}")


def load_scenario(name: str, scale: float = 1.0, seed: int = 7) -> CDRDataset:
    """Generate the synthetic CDR dataset for a named scenario."""
    return generate_scenario(scenario_spec(name, scale=scale, seed=seed))


def load_all_scenarios(scale: float = 1.0, seed: int = 7) -> List[CDRDataset]:
    """Generate all four scenarios (used by the Table I bench)."""
    return [load_scenario(name, scale=scale, seed=seed) for name in SCENARIO_NAMES]
