"""Synthetic long-tailed CDR scenario generator.

The paper evaluates on Amazon category pairs and a proprietary MYbank dataset
(Table I).  Neither is available offline, so the reproduction generates
synthetic two-domain scenarios from a shared latent preference model that
preserves the properties the paper's analysis depends on:

* **Partial overlap** — a configurable number of users appear in both domains
  (their latent preferences are shared up to domain noise).
* **Long-tailed activity** — user interaction counts follow a power law, so
  most users are tail users (the CH2 motivation).
* **Long-tailed popularity** — item popularity follows a power law.
* **Shared structure across domains** — both domains' items live in the same
  latent space, so knowledge genuinely transfers and CDR methods have signal
  to exploit even for non-overlapped users.

The generator is deliberately simple and fully seeded: every experiment that
cites it is reproducible bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .schema import CDRDataset, DomainData

__all__ = ["DomainSpec", "ScenarioSpec", "generate_domain", "generate_scenario"]


@dataclass
class DomainSpec:
    """Size and shape parameters of one synthetic domain."""

    name: str
    num_users: int
    num_items: int
    mean_interactions_per_user: float = 10.0
    min_interactions_per_user: int = 5
    activity_exponent: float = 1.3
    popularity_exponent: float = 1.1
    preference_temperature: float = 0.6

    def __post_init__(self) -> None:
        if self.num_users <= 0 or self.num_items <= 0:
            raise ValueError("domain must have positive user and item counts")
        if self.mean_interactions_per_user < self.min_interactions_per_user:
            raise ValueError("mean interactions must be >= the per-user minimum")


@dataclass
class ScenarioSpec:
    """Full specification of a two-domain CDR scenario."""

    name: str
    domain_a: DomainSpec
    domain_b: DomainSpec
    num_overlap: int
    latent_dim: int = 8
    cross_domain_correlation: float = 0.85
    seed: int = 0

    def __post_init__(self) -> None:
        max_overlap = min(self.domain_a.num_users, self.domain_b.num_users)
        if not 0 <= self.num_overlap <= max_overlap:
            raise ValueError(
                f"num_overlap must be in [0, {max_overlap}], got {self.num_overlap}"
            )
        if not 0.0 <= self.cross_domain_correlation <= 1.0:
            raise ValueError("cross_domain_correlation must be in [0, 1]")


def _power_law_weights(
    count: int,
    exponent: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Zipf-like weights over ``count`` entities, randomly permuted."""
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    weights /= weights.sum()
    return rng.permutation(weights)


def _sample_interactions_for_user(
    preference: np.ndarray,
    item_latents: np.ndarray,
    popularity: np.ndarray,
    count: int,
    temperature: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample ``count`` distinct items for one user.

    Choice probability combines the preference score (dot product in latent
    space, softmax-normalised) with item popularity, so both personalisation
    and long-tail popularity effects are present.
    """
    scores = item_latents @ preference / max(temperature, 1e-6)
    scores -= scores.max()
    preference_probs = np.exp(scores)
    probs = preference_probs * popularity
    probs /= probs.sum()
    count = min(count, item_latents.shape[0])
    return rng.choice(item_latents.shape[0], size=count, replace=False, p=probs)


def generate_domain(
    spec: DomainSpec,
    user_latents: np.ndarray,
    global_user_ids: np.ndarray,
    rng: np.random.Generator,
    item_latents: Optional[np.ndarray] = None,
) -> Tuple[DomainData, np.ndarray]:
    """Generate one domain's interaction log from user latent preferences.

    Returns the domain data and the item latent matrix (so tests and the
    online A/B simulator can reuse the ground-truth preference model).
    """
    latent_dim = user_latents.shape[1]
    if item_latents is None:
        item_latents = rng.normal(0.0, 1.0, size=(spec.num_items, latent_dim))
    popularity = _power_law_weights(spec.num_items, spec.popularity_exponent, rng)

    activity = _power_law_weights(spec.num_users, spec.activity_exponent, rng)
    total_interactions = int(round(spec.mean_interactions_per_user * spec.num_users))
    counts = np.maximum(
        spec.min_interactions_per_user,
        np.round(activity * total_interactions).astype(np.int64),
    )
    # Cap the heaviest users so nobody exhausts the catalogue (the evaluation
    # protocol needs unseen items to sample negatives from).
    per_user_cap = max(spec.min_interactions_per_user, int(0.25 * spec.num_items))
    counts = np.minimum(counts, min(per_user_cap, spec.num_items))

    users, items = [], []
    for user in range(spec.num_users):
        chosen = _sample_interactions_for_user(
            user_latents[user],
            item_latents,
            popularity,
            int(counts[user]),
            spec.preference_temperature,
            rng,
        )
        users.extend([user] * chosen.size)
        items.extend(chosen.tolist())

    users_arr = np.asarray(users, dtype=np.int64)
    items_arr = np.asarray(items, dtype=np.int64)
    timestamps = rng.uniform(0.0, 1.0, size=users_arr.shape[0])

    domain = DomainData(
        name=spec.name,
        num_users=spec.num_users,
        num_items=spec.num_items,
        users=users_arr,
        items=items_arr,
        timestamps=timestamps,
        global_user_ids=global_user_ids,
    )
    return domain, item_latents


def generate_scenario(spec: ScenarioSpec) -> CDRDataset:
    """Generate a full two-domain CDR scenario from a :class:`ScenarioSpec`."""
    rng = np.random.default_rng(spec.seed)
    num_a, num_b = spec.domain_a.num_users, spec.domain_b.num_users
    overlap = spec.num_overlap

    # Global identities: overlapped users get ids [0, overlap); the remaining
    # users of each domain get disjoint id ranges.
    ids_a = np.concatenate(
        [np.arange(overlap), overlap + np.arange(num_a - overlap)]
    ).astype(np.int64)
    ids_b = np.concatenate(
        [np.arange(overlap), overlap + (num_a - overlap) + np.arange(num_b - overlap)]
    ).astype(np.int64)

    # Shared latent preferences.  Overlapped users: the same base preference
    # perturbed per domain; non-overlapped users: independent preferences that
    # still live in the shared latent space.
    rho = spec.cross_domain_correlation
    base_overlap = rng.normal(0.0, 1.0, size=(overlap, spec.latent_dim))
    noise_a = rng.normal(0.0, 1.0, size=(overlap, spec.latent_dim))
    noise_b = rng.normal(0.0, 1.0, size=(overlap, spec.latent_dim))
    overlap_a = np.sqrt(rho) * base_overlap + np.sqrt(1.0 - rho) * noise_a
    overlap_b = np.sqrt(rho) * base_overlap + np.sqrt(1.0 - rho) * noise_b

    rest_a = rng.normal(0.0, 1.0, size=(num_a - overlap, spec.latent_dim))
    rest_b = rng.normal(0.0, 1.0, size=(num_b - overlap, spec.latent_dim))
    latents_a = np.vstack([overlap_a, rest_a])
    latents_b = np.vstack([overlap_b, rest_b])

    # Both domains' items live in the same latent space so cross-domain
    # structure exists beyond the overlapped users themselves.
    domain_a, item_latents_a = generate_domain(spec.domain_a, latents_a, ids_a, rng)
    domain_b, item_latents_b = generate_domain(spec.domain_b, latents_b, ids_b, rng)

    metadata = {
        "spec": spec,
        "latents_a": latents_a,
        "latents_b": latents_b,
        "item_latents_a": item_latents_a,
        "item_latents_b": item_latents_b,
    }
    return CDRDataset(spec.name, domain_a, domain_b, metadata)
