"""Leave-one-out train/validation/test splitting.

Following the paper ("we utilize the leave-one-out technique"), each user's
most recent interaction becomes the test positive, the second most recent the
validation positive, and the rest form the training set.  Users with fewer
than three interactions contribute all their interactions to training and are
excluded from evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .schema import DomainData

__all__ = ["DomainSplit", "leave_one_out_split"]


@dataclass
class DomainSplit:
    """Per-domain split produced by :func:`leave_one_out_split`."""

    domain: DomainData
    train_users: np.ndarray
    train_items: np.ndarray
    valid_users: np.ndarray
    valid_items: np.ndarray
    test_users: np.ndarray
    test_items: np.ndarray

    @property
    def num_train(self) -> int:
        return int(self.train_users.shape[0])

    @property
    def num_eval_users(self) -> int:
        return int(self.test_users.shape[0])

    def train_domain(self) -> DomainData:
        """Return a :class:`DomainData` containing only training interactions.

        Models must build their interaction graphs from this view so that the
        held-out positives never leak into message passing.
        """
        return DomainData(
            name=self.domain.name,
            num_users=self.domain.num_users,
            num_items=self.domain.num_items,
            users=self.train_users,
            items=self.train_items,
            timestamps=np.zeros_like(self.train_users, dtype=np.float64),
            global_user_ids=self.domain.global_user_ids,
        )


def leave_one_out_split(
    domain: DomainData,
    min_eval_interactions: int = 3,
) -> DomainSplit:
    """Split one domain with the leave-one-out protocol.

    Parameters
    ----------
    domain:
        The full interaction log.
    min_eval_interactions:
        Users need at least this many interactions to contribute a validation
        and a test positive (default 3: one train, one valid, one test).
    """
    order = np.argsort(domain.timestamps, kind="stable")
    users_sorted = domain.users[order]
    items_sorted = domain.items[order]

    train_users, train_items = [], []
    valid_users, valid_items = [], []
    test_users, test_items = [], []

    for user in range(domain.num_users):
        positions = np.where(users_sorted == user)[0]
        if positions.size == 0:
            continue
        user_items = items_sorted[positions]
        if positions.size < min_eval_interactions:
            train_users.extend([user] * user_items.size)
            train_items.extend(user_items.tolist())
            continue
        test_users.append(user)
        test_items.append(int(user_items[-1]))
        valid_users.append(user)
        valid_items.append(int(user_items[-2]))
        train_users.extend([user] * (user_items.size - 2))
        train_items.extend(user_items[:-2].tolist())

    return DomainSplit(
        domain=domain,
        train_users=np.asarray(train_users, dtype=np.int64),
        train_items=np.asarray(train_items, dtype=np.int64),
        valid_users=np.asarray(valid_users, dtype=np.int64),
        valid_items=np.asarray(valid_items, dtype=np.int64),
        test_users=np.asarray(test_users, dtype=np.int64),
        test_items=np.asarray(test_items, dtype=np.int64),
    )
