"""Dataset schema for partially overlapped multi-target CDR scenarios.

A :class:`DomainData` holds one domain's interaction log plus the *global*
identity of each local user, which is what makes cross-domain overlap
explicit: two local users in different domains refer to the same person iff
they share a global user id (Section II.A: ``U_O = U^Z ∩ U^Z̄``).

A :class:`CDRDataset` bundles the two domains and exposes the overlap
structure, the ``Ku`` overlap-ratio manipulation and the ``Ds`` density
manipulation used throughout the paper's evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..graph import InteractionGraph

__all__ = ["DomainData", "CDRDataset"]


@dataclass
class DomainData:
    """Interaction log of a single domain.

    Attributes
    ----------
    name:
        Human-readable domain name (e.g. ``"Music"``).
    num_users, num_items:
        Node counts; local indices are ``0 .. num_users-1`` / ``0 .. num_items-1``.
    users, items, timestamps:
        Parallel arrays of observed interactions.
    global_user_ids:
        Array of shape ``(num_users,)`` mapping each local user to a global
        identity shared across domains.
    """

    name: str
    num_users: int
    num_items: int
    users: np.ndarray
    items: np.ndarray
    timestamps: np.ndarray
    global_user_ids: np.ndarray

    def __post_init__(self) -> None:
        self.users = np.asarray(self.users, dtype=np.int64)
        self.items = np.asarray(self.items, dtype=np.int64)
        self.timestamps = np.asarray(self.timestamps, dtype=np.float64)
        self.global_user_ids = np.asarray(self.global_user_ids, dtype=np.int64)
        if not (self.users.shape == self.items.shape == self.timestamps.shape):
            raise ValueError("users, items and timestamps must be parallel arrays")
        if self.global_user_ids.shape[0] != self.num_users:
            raise ValueError("global_user_ids must have one entry per local user")
        if self.users.size:
            if self.users.max() >= self.num_users or self.users.min() < 0:
                raise ValueError(f"domain '{self.name}': user index out of range")
            if self.items.max() >= self.num_items or self.items.min() < 0:
                raise ValueError(f"domain '{self.name}': item index out of range")

    # ------------------------------------------------------------------
    @property
    def num_interactions(self) -> int:
        return int(self.users.shape[0])

    @property
    def density(self) -> float:
        """Observed fraction of the user×item matrix (Table I "Density")."""
        return self.num_interactions / float(self.num_users * self.num_items)

    @property
    def average_interactions_per_item(self) -> float:
        """Ratings divided by item count — the quantity discussed in Sec. III.B.4(ii)."""
        return self.num_interactions / float(self.num_items)

    def user_degrees(self) -> np.ndarray:
        return np.bincount(self.users, minlength=self.num_users)

    def item_degrees(self) -> np.ndarray:
        return np.bincount(self.items, minlength=self.num_items)

    def interaction_graph(self) -> InteractionGraph:
        """Build the bipartite :class:`InteractionGraph` of this domain."""
        return InteractionGraph(self.num_users, self.num_items, self.users, self.items)

    def copy(self) -> "DomainData":
        return DomainData(
            name=self.name,
            num_users=self.num_users,
            num_items=self.num_items,
            users=self.users.copy(),
            items=self.items.copy(),
            timestamps=self.timestamps.copy(),
            global_user_ids=self.global_user_ids.copy(),
        )

    def __repr__(self) -> str:
        return (
            f"DomainData(name={self.name!r}, users={self.num_users}, items={self.num_items}, "
            f"ratings={self.num_interactions}, density={self.density:.5f})"
        )


@dataclass
class CDRDataset:
    """A pair of domains forming one multi-target CDR scenario."""

    name: str
    domain_a: DomainData
    domain_b: DomainData
    metadata: Dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # overlap structure
    # ------------------------------------------------------------------
    def overlap_pairs(self) -> np.ndarray:
        """Return an ``(n_overlap, 2)`` array of (local idx in A, local idx in B).

        Pairs are matched through the global user ids; a global id appearing
        in both domains denotes the same person.
        """
        ids_a = self.domain_a.global_user_ids
        ids_b = self.domain_b.global_user_ids
        lookup_b = {int(gid): idx for idx, gid in enumerate(ids_b)}
        pairs = [
            (idx_a, lookup_b[int(gid)])
            for idx_a, gid in enumerate(ids_a)
            if int(gid) in lookup_b
        ]
        if not pairs:
            return np.zeros((0, 2), dtype=np.int64)
        return np.asarray(pairs, dtype=np.int64)

    @property
    def num_overlapping(self) -> int:
        """Table I "#Overlapping"."""
        return int(self.overlap_pairs().shape[0])

    def overlapping_users(self) -> Tuple[np.ndarray, np.ndarray]:
        """Local indices of overlapped users in each domain."""
        pairs = self.overlap_pairs()
        return pairs[:, 0], pairs[:, 1]

    def non_overlapping_users(self) -> Tuple[np.ndarray, np.ndarray]:
        """Local indices of non-overlapped users in each domain (``U_non``)."""
        pairs = self.overlap_pairs()
        mask_a = np.ones(self.domain_a.num_users, dtype=bool)
        mask_b = np.ones(self.domain_b.num_users, dtype=bool)
        mask_a[pairs[:, 0]] = False
        mask_b[pairs[:, 1]] = False
        return np.where(mask_a)[0], np.where(mask_b)[0]

    # ------------------------------------------------------------------
    # Ku / Ds manipulations (Sections III.A.2 and III.B.5)
    # ------------------------------------------------------------------
    def with_overlap_ratio(
        self,
        ratio: float,
        rng: Optional[np.random.Generator] = None,
    ) -> "CDRDataset":
        """Keep only ``ratio`` of the overlapped users linked across domains.

        The remaining formerly-overlapped users in domain B are assigned fresh
        global ids, i.e. the model can no longer tell they are the same people
        — exactly the ``Ku`` manipulation of Section III.A.2.
        """
        if not 0.0 <= ratio <= 1.0:
            raise ValueError(f"overlap ratio must be in [0, 1], got {ratio}")
        rng = rng or np.random.default_rng(0)
        pairs = self.overlap_pairs()
        keep_count = int(round(ratio * pairs.shape[0]))
        order = rng.permutation(pairs.shape[0])
        dropped = pairs[order[keep_count:]]

        new_b = self.domain_b.copy()
        next_gid = int(
            max(
                self.domain_a.global_user_ids.max(initial=0),
                self.domain_b.global_user_ids.max(initial=0),
            )
        ) + 1
        for offset, idx_b in enumerate(dropped[:, 1]):
            new_b.global_user_ids[idx_b] = next_gid + offset

        metadata = dict(self.metadata)
        metadata["overlap_ratio"] = ratio
        return CDRDataset(self.name, self.domain_a.copy(), new_b, metadata)

    def with_density(
        self,
        ratio: float,
        min_interactions: int = 3,
        rng: Optional[np.random.Generator] = None,
    ) -> "CDRDataset":
        """Downsample both domains' interactions to ``ratio`` of their volume.

        Every user keeps at least ``min_interactions`` interactions so the
        leave-one-out protocol remains well defined (the paper's preprocessing
        removes users with fewer than 5 interactions anyway).
        """
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"density ratio must be in (0, 1], got {ratio}")
        rng = rng or np.random.default_rng(0)
        new_a = _downsample_domain(self.domain_a, ratio, min_interactions, rng)
        new_b = _downsample_domain(self.domain_b, ratio, min_interactions, rng)
        metadata = dict(self.metadata)
        metadata["density_ratio"] = ratio
        return CDRDataset(self.name, new_a, new_b, metadata)

    def domains(self) -> Tuple[DomainData, DomainData]:
        return self.domain_a, self.domain_b

    def __repr__(self) -> str:
        return (
            f"CDRDataset(name={self.name!r}, overlap={self.num_overlapping}, "
            f"A={self.domain_a!r}, B={self.domain_b!r})"
        )


def _downsample_domain(
    domain: DomainData,
    ratio: float,
    min_interactions: int,
    rng: np.random.Generator,
) -> DomainData:
    """Keep roughly ``ratio`` of each user's interactions (at least ``min_interactions``)."""
    keep_mask = np.zeros(domain.num_interactions, dtype=bool)
    for user in range(domain.num_users):
        positions = np.where(domain.users == user)[0]
        if positions.size == 0:
            continue
        target = max(min_interactions, int(round(ratio * positions.size)))
        target = min(target, positions.size)
        chosen = rng.choice(positions, size=target, replace=False)
        keep_mask[chosen] = True
    return DomainData(
        name=domain.name,
        num_users=domain.num_users,
        num_items=domain.num_items,
        users=domain.users[keep_mask],
        items=domain.items[keep_mask],
        timestamps=domain.timestamps[keep_mask],
        global_user_ids=domain.global_user_ids.copy(),
    )
