"""Data substrate: schemas, synthetic generators, splits, sampling, loaders."""

from .dataloader import Batch, InteractionDataLoader, build_training_examples
from .io import load_dataset, save_dataset
from .datasets import (
    SCENARIO_NAMES,
    load_all_scenarios,
    load_scenario,
    paper_table1_reference,
    scenario_spec,
)
from .negative_sampling import NegativeSampler, build_ranking_candidates
from .pipeline import (
    DataPipeline,
    PipelineStats,
    PrefetchDataPipeline,
    SerialDataPipeline,
    build_pipeline,
)
from .preprocessing import compact_items, filter_min_interactions, preprocess_scenario
from .schema import CDRDataset, DomainData
from .split import DomainSplit, leave_one_out_split
from .statistics import DomainStatistics, format_statistics_table, scenario_statistics
from .synthetic import DomainSpec, ScenarioSpec, generate_domain, generate_scenario

__all__ = [
    "DomainData",
    "CDRDataset",
    "save_dataset",
    "load_dataset",
    "DomainSpec",
    "ScenarioSpec",
    "generate_domain",
    "generate_scenario",
    "SCENARIO_NAMES",
    "scenario_spec",
    "load_scenario",
    "load_all_scenarios",
    "paper_table1_reference",
    "filter_min_interactions",
    "compact_items",
    "preprocess_scenario",
    "DomainSplit",
    "leave_one_out_split",
    "NegativeSampler",
    "build_ranking_candidates",
    "Batch",
    "InteractionDataLoader",
    "build_training_examples",
    "DataPipeline",
    "SerialDataPipeline",
    "PrefetchDataPipeline",
    "PipelineStats",
    "build_pipeline",
    "DomainStatistics",
    "scenario_statistics",
    "format_statistics_table",
]
