"""repro — reproduction of NMCDR (Neural Node Matching for Multi-Target CDR, ICDE 2023).

Layered architecture (bottom to top):

* :mod:`repro.tensor` — numpy autograd engine.
* :mod:`repro.nn`, :mod:`repro.optim` — neural-network layers and optimisers.
* :mod:`repro.graph` — user–item / user–user graph substrate.
* :mod:`repro.data` — synthetic CDR dataset generation, splitting, sampling.
* :mod:`repro.metrics` — ranking / classification metrics and the evaluation protocol.
* :mod:`repro.core` — the NMCDR model, trainer, ablation variants, stability analysis.
* :mod:`repro.baselines` — the eleven comparison models from the paper.
* :mod:`repro.analysis` — t-SNE, embedding alignment, efficiency accounting.
* :mod:`repro.experiments` — table/figure-level experiment harness.
"""

from .logging_utils import ExperimentLogger, Timer
from .tensor import Tensor, no_grad, set_seed

__version__ = "1.0.0"

__all__ = ["Tensor", "no_grad", "set_seed", "ExperimentLogger", "Timer", "__version__"]
