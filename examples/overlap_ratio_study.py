"""Overlap-ratio study: how much does cross-domain transfer depend on overlap?

Reproduces a slice of Tables II–V: sweep the user overlap ratio Ku on one
scenario, compare NMCDR against a representative baseline from each family
(single-domain, multi-task, graph CDR, partial-overlap CDR) and print the
resulting table together with NMCDR's improvement over the best baseline.

Run with::

    python examples/overlap_ratio_study.py [scenario]

where ``scenario`` is one of music_movie / cloth_sport / phone_elec / loan_fund
(default: phone_elec).
"""

from __future__ import annotations

import sys

from repro.experiments import ExperimentSettings, run_overlap_sweep


def main(scenario: str = "phone_elec") -> None:
    settings = ExperimentSettings(
        scenario=scenario,
        scale=0.5,
        num_epochs=10,
        num_eval_negatives=99,
        embedding_dim=32,
    )
    models = ("LR", "PLE", "GA-DTCDR", "PTUPCDR", "NMCDR")
    ratios = (0.1, 0.5, 0.9)

    print(f"Running the overlap sweep on '{scenario}' (models: {', '.join(models)}) ...\n")
    sweep = run_overlap_sweep(
        scenario,
        model_names=models,
        overlap_ratios=ratios,
        settings=settings,
    )

    for domain_key in ("a", "b"):
        print(sweep.format_table(domain_key))
        print(
            f"NMCDR win fraction: {sweep.nmcdr_win_fraction(domain_key):.2f} | "
            f"mean improvement over best baseline: {sweep.mean_improvement(domain_key):.1f}%\n"
        )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "phone_elec")
