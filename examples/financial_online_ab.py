"""Financial multi-domain serving simulation (the MYbank-style online A/B test).

Reproduces the spirit of Section III.C: several recommendation models are
trained offline on logged interactions from partially overlapping financial
domains ("Loan" and "Fund"), then deployed as competing serving groups in a
simulated impression stream; the measured conversion rate (CVR) per group and
domain mirrors Table VIII.

Every impression is answered through the production serving tier
(:mod:`repro.serve`): NMCDR serves top-1 slates from its persistent
representation store, the baselines through the scorer's micro-batched
delegation path — the same code path ``repro serve`` exposes as a CLI.

Run with::

    python examples/financial_online_ab.py
"""

from __future__ import annotations

from repro.experiments import OnlineDomainSpec, run_online_ab


def main() -> None:
    groups = ("Control", "PLE", "DML", "NMCDR")
    domains = (
        OnlineDomainSpec("Loan", 300, 50, base_cvr=0.105),
        OnlineDomainSpec("Fund", 200, 40, base_cvr=0.061),
    )
    print("Training the serving groups offline and simulating 1500 impressions per domain ...\n")
    result = run_online_ab(
        groups=groups,
        domain_specs=domains,
        impressions_per_domain=1500,
        num_epochs=10,
        embedding_dim=32,
        seed=11,
    )
    print(result.format_table())
    print()
    for spec in domains:
        improvement = result.improvement_over_best_baseline(spec.name)
        print(f"NMCDR CVR improvement over the best baseline in {spec.name}: {improvement:+.1f}%")


if __name__ == "__main__":
    main()
