"""Aggregate benchmark reports and export figure data for external plotting.

Run the benchmark suite first::

    pytest benchmarks/ --benchmark-only

then::

    python examples/export_results_report.py

This collects every per-experiment report from ``benchmarks/results/`` into a
single markdown document (``benchmarks/results/REPORT.md``) and additionally
exports one CSV of figure-ready data (the Fig. 4 head/tail-threshold sweep) to
show how the ``repro.experiments.figures`` helpers are used.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments import ExperimentSettings, run_head_threshold_sweep
from repro.experiments.figures import hyperparameter_sweep_to_csv
from repro.experiments.report import write_markdown_report

RESULTS_DIR = Path(__file__).parent.parent / "benchmarks" / "results"


def main() -> None:
    report_path = write_markdown_report(RESULTS_DIR, RESULTS_DIR / "REPORT.md")
    print(f"aggregated markdown report written to {report_path}")

    print("running a small Fig. 4 sweep to demonstrate CSV export ...")
    sweep = run_head_threshold_sweep(
        "cloth_sport",
        thresholds=(3, 7, 11),
        settings=ExperimentSettings(
            scenario="cloth_sport", scale=0.3, num_epochs=3, num_eval_negatives=40, embedding_dim=16
        ),
    )
    csv_path = RESULTS_DIR / "fig4_head_tail_threshold.csv"
    hyperparameter_sweep_to_csv(sweep, csv_path)
    print(f"figure data written to {csv_path}")
    print(sweep.format_table())


if __name__ == "__main__":
    main()
