"""Quickstart: train NMCDR on a synthetic partially-overlapped CDR scenario.

Run with::

    python examples/quickstart.py

The script generates a scaled-down "Cloth–Sport" style scenario, keeps only
10% of the overlapped users linked across the two domains (the hard setting
the paper targets), trains NMCDR and a simple single-domain baseline, and
prints leave-one-out ranking metrics for both domains.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import LRModel
from repro.core import CDRTrainer, NMCDR, NMCDRConfig, TrainerConfig, build_task
from repro.data import load_scenario, preprocess_scenario


def main() -> None:
    # 1. Data: generate the synthetic scenario and apply the paper's preprocessing.
    dataset = load_scenario("cloth_sport", scale=0.5, seed=7)
    dataset = preprocess_scenario(dataset, min_interactions=3)
    dataset = dataset.with_overlap_ratio(0.10, rng=np.random.default_rng(7))
    print(dataset)
    print(f"overlapped users after Ku=10%: {dataset.num_overlapping}\n")

    # 2. Task: leave-one-out splits, training graphs, head/tail partition, overlap alignment.
    task = build_task(dataset, head_threshold=7)
    print(task.summary(), "\n")

    # 3. Models: NMCDR and an LR baseline trained by the same joint trainer.
    trainer_config = TrainerConfig(
        num_epochs=10,
        batch_size=256,
        num_eval_negatives=99,
        seed=7,
    )

    nmcdr = NMCDR(task, NMCDRConfig(embedding_dim=32, head_threshold=7, seed=7))
    nmcdr_history = CDRTrainer(nmcdr, task, trainer_config).fit()
    nmcdr_metrics = CDRTrainer(nmcdr, task, trainer_config).evaluate()

    baseline = LRModel(task, embedding_dim=8, seed=7)
    CDRTrainer(baseline, task, trainer_config).fit()
    baseline_metrics = CDRTrainer(baseline, task, trainer_config).evaluate()

    # 4. Results.
    print(f"NMCDR final training loss: {nmcdr_history.final_loss:.4f}")
    for key, domain_name in (
        ("a", dataset.domain_a.name),
        ("b", dataset.domain_b.name),
    ):
        ours = nmcdr_metrics[key]
        theirs = baseline_metrics[key]
        print(
            f"{domain_name:>6}:  NMCDR  NDCG@10={ours['ndcg@10']:.4f}  HR@10={ours['hr@10']:.4f}"
            f"   |   LR  NDCG@10={theirs['ndcg@10']:.4f}  HR@10={theirs['hr@10']:.4f}"
        )


if __name__ == "__main__":
    main()
