"""Using NMCDR on your own interaction logs.

The synthetic generators are only one way to build a :class:`CDRDataset`; any
pair of implicit-feedback logs can be wired in directly.  This example builds
a toy two-domain dataset from plain Python lists (imagine them read from CSV
files), runs the standard preprocessing/split pipeline and trains NMCDR.

The key convention: **global user ids** express the cross-domain identity.
Two local users refer to the same person exactly when they share a global id.

Run with::

    python examples/custom_dataset.py
"""

from __future__ import annotations

import numpy as np

from repro.core import CDRTrainer, NMCDR, NMCDRConfig, TrainerConfig, build_task
from repro.data import CDRDataset, DomainData, preprocess_scenario


def build_toy_domain(
    name: str,
    num_users: int,
    num_items: int,
    global_ids,
    seed: int,
) -> DomainData:
    """Fabricate an interaction log; replace this with your CSV/parquet reader."""
    rng = np.random.default_rng(seed)
    users, items, timestamps = [], [], []
    for user in range(num_users):
        history_length = int(rng.integers(5, 15))
        chosen = rng.choice(
            num_items,
            size=min(history_length, num_items),
            replace=False,
        )
        users.extend([user] * chosen.size)
        items.extend(chosen.tolist())
        timestamps.extend(rng.uniform(0, 1, size=chosen.size).tolist())
    return DomainData(
        name=name,
        num_users=num_users,
        num_items=num_items,
        users=np.array(users),
        items=np.array(items),
        timestamps=np.array(timestamps),
        global_user_ids=np.asarray(global_ids),
    )


def main() -> None:
    # 120 users in "books", 100 in "movies"; the first 40 of each are the same people.
    books_ids = np.arange(120)
    movies_ids = np.concatenate([np.arange(40), 200 + np.arange(60)])

    books = build_toy_domain("books", 120, 80, books_ids, seed=1)
    movies = build_toy_domain("movies", 100, 60, movies_ids, seed=2)
    dataset = CDRDataset("books_movies", books, movies)
    print(dataset)
    print(f"overlapped users: {dataset.num_overlapping}\n")

    dataset = preprocess_scenario(dataset, min_interactions=5)
    task = build_task(dataset, head_threshold=7)

    model = NMCDR(task, NMCDRConfig(embedding_dim=32, seed=0))
    trainer = CDRTrainer(
        model,
        task,
        TrainerConfig(num_epochs=8, num_eval_negatives=50, seed=0),
    )
    history = trainer.fit()
    metrics = trainer.evaluate()

    print(f"final loss: {history.final_loss:.4f}")
    for key, name in (("a", "books"), ("b", "movies")):
        print(f"{name:>7}: NDCG@10={metrics[key]['ndcg@10']:.4f}  HR@10={metrics[key]['hr@10']:.4f}")


if __name__ == "__main__":
    main()
