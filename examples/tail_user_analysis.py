"""Tail-user analysis: do the matching and complementing modules fix under-representation?

Reproduces the argument behind Fig. 5 and the CH2 motivation of the paper:

1. train NMCDR on a partially overlapped scenario;
2. measure how well the *tail* (data-sparse) user embedding distribution
   aligns with the *head* (data-rich) distribution after each pipeline stage;
3. compare per-group ranking quality of the full model against the
   ``w/o-Inc`` ablation (no complementing module);
4. print the theoretical stability coefficient of Section II.H.

Run with::

    python examples/tail_user_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import stagewise_alignment
from repro.core import (
    CDRTrainer,
    NMCDRConfig,
    TrainerConfig,
    build_task,
    build_variant,
    stability_report,
)
from repro.data import load_scenario, preprocess_scenario
from repro.metrics import RankingEvaluator


def per_group_ndcg(model, task, domain_key: str) -> dict:
    """NDCG@10 computed separately over head users and tail users."""
    split = task.domain(domain_key).split
    evaluator = RankingEvaluator(
        split,
        domain_key,
        num_negatives=99,
        rng=np.random.default_rng(0),
    )
    scores = evaluator.score_matrix(model)
    partition = task.domain(domain_key).partition
    head_mask = np.isin(evaluator.users, partition.head_users)

    from repro.metrics import ndcg_at_k

    return {
        "head": ndcg_at_k(scores[head_mask], 10) if head_mask.any() else float("nan"),
        "tail": ndcg_at_k(scores[~head_mask], 10) if (~head_mask).any() else float("nan"),
    }


def main() -> None:
    dataset = preprocess_scenario(
        load_scenario("cloth_sport", scale=0.5, seed=7),
        min_interactions=3,
    )
    dataset = dataset.with_overlap_ratio(0.5, rng=np.random.default_rng(7))
    task = build_task(dataset, head_threshold=7)
    trainer_config = TrainerConfig(
        num_epochs=10,
        batch_size=256,
        num_eval_negatives=99,
        seed=7,
    )
    base_config = NMCDRConfig(embedding_dim=32, head_threshold=7, seed=7)

    print("Training the full NMCDR model ...")
    full_model = build_variant("full", task, base_config)
    CDRTrainer(full_model, task, trainer_config).fit()
    full_model.prepare_for_evaluation()

    print("Training the w/o-Inc ablation (no complementing module) ...\n")
    ablated_model = build_variant("w/o-Inc", task, base_config)
    CDRTrainer(ablated_model, task, trainer_config).fit()
    ablated_model.prepare_for_evaluation()

    print("Head/tail embedding alignment per stage (lower = tail users better represented):")
    for score in stagewise_alignment(full_model, "a", rng=np.random.default_rng(0)):
        print(
            f"  {score.stage:<8} centroid distance={score.centroid_distance:.4f}  "
            f"MMD={score.mmd:.4f}"
        )

    print("\nPer-group NDCG@10 in the Cloth domain:")
    full_groups = per_group_ndcg(full_model, task, "a")
    ablated_groups = per_group_ndcg(ablated_model, task, "a")
    print(f"  full NMCDR : head={full_groups['head']:.4f}  tail={full_groups['tail']:.4f}")
    print(f"  w/o-Inc    : head={ablated_groups['head']:.4f}  tail={ablated_groups['tail']:.4f}")

    report = stability_report(full_model, "a", rng=np.random.default_rng(0))
    print(
        f"\nStability (Sec. II.H): bound coefficient={report.theoretical_bound_coefficient:.4f}, "
        f"mean empirical deviation={report.mean_empirical_deviation:.5f} "
        f"under perturbations of norm ~{report.perturbation_norm:.3f}"
    )


if __name__ == "__main__":
    main()
