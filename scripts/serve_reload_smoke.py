#!/usr/bin/env python
"""End-to-end hot-reload smoke for the serving tier (CI fast job).

Drives the full validate-then-swap cycle through the public python API:

1. train a tiny two-epoch run with per-epoch checkpointing,
2. open a serve session pinned to the *first* checkpoint and answer a
   request slate,
3. let :class:`HotReloader` discover the second checkpoint, validate it
   (digest, config fingerprint, canary slate) and swap it in,
4. assert the swapped session's answers are bit-identical (float64) to a
   cold session built directly from the second checkpoint, the serving
   generation advanced by exactly one, and ``--verify``-style full-model
   rescoring agrees with the hot answers.

Exit code 0 on success, 1 with a diagnostic on any divergence.  The drill
is fully deterministic (fixed seed, float64 scoring), so a failure here is
a real reload bug, never flakiness.

Usage::

    PYTHONPATH=src python scripts/serve_reload_smoke.py [--workdir DIR]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import main as cli_main  # noqa: E402
from repro.core.checkpoint import list_checkpoints  # noqa: E402
from repro.serve import HotReloader, ServeSession  # noqa: E402

REQUESTS = [
    {"domain": "a", "user": 0, "k": 5},
    {"domain": "a", "user": 7, "k": 3},
    {"domain": "b", "user": 2, "k": 5},
    {"domain": "b", "user": 11, "k": 4},
]


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def answers(session: ServeSession) -> list:
    return [session.answer(dict(payload)) for payload in REQUESTS]


def run(workdir: Path) -> None:
    run_dir = workdir / "run"
    rc = cli_main(
        [
            "train",
            "--scenario", "cloth_sport",
            "--scale", "0.3",
            "--epochs", "2",
            "--embedding-dim", "16",
            "--negatives", "10",
            "--seed", "0",
            "--checkpoint-dir", str(run_dir),
            "--checkpoint-every", "1",
        ]
    )
    if rc != 0:
        fail(f"training exited with code {rc}")
    checkpoints = list_checkpoints(run_dir)
    if len(checkpoints) != 2:
        fail(f"expected 2 checkpoints, found {len(checkpoints)}")
    first, second = checkpoints

    hot = ServeSession.from_checkpoint_dir(run_dir, checkpoint=first, use_best=False)
    old_generation = hot.scorer.store.generation
    before = answers(hot)  # the pre-swap slate must come from checkpoint 1
    print(f"serving checkpoint {first.name} at generation {old_generation}")

    reloader = HotReloader(hot, use_best=False)
    result = reloader.check()
    if result is None or not result.swapped:
        fail(f"reloader did not swap to {second.name}: {result!r}")
    if result["generation"] != old_generation + 1:
        fail(
            f"generation advanced {old_generation} -> {result['generation']}, "
            "expected exactly +1"
        )
    if hot.checkpoint_path != second:
        fail(f"session still pinned to {hot.checkpoint_path}")
    print(f"hot-swapped to {second.name} at generation {result['generation']}")

    cold = ServeSession.from_checkpoint_dir(run_dir, checkpoint=second, use_best=False)
    after = answers(hot)
    for hot_response, cold_response in zip(after, answers(cold)):
        if hot_response["items"] != cold_response["items"]:
            fail(f"item slate diverged from cold rebuild: {hot_response}")
        if hot_response["scores"] != cold_response["scores"]:
            fail(f"scores diverged from cold rebuild (float64): {hot_response}")
        if hot_response["params_version"] != cold_response["params_version"]:
            fail(f"params_version diverged from cold rebuild: {hot_response}")
    if after == before:
        fail("answers unchanged across the swap — the new params never landed")

    for payload, response in zip(REQUESTS, after):
        if not hot.verify(dict(payload), response):
            fail(f"full-model rescoring disagreed with the hot answer: {response}")

    print("hot swap bit-identical to cold rebuild; verify agrees")
    print(json.dumps(hot.health.snapshot()["reload"]))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workdir",
        default=None,
        help="directory for the trained run (default: a fresh temp dir)",
    )
    args = parser.parse_args()
    if args.workdir:
        workdir = Path(args.workdir)
        workdir.mkdir(parents=True, exist_ok=True)
        run(workdir)
    else:
        with tempfile.TemporaryDirectory(prefix="serve-reload-smoke-") as tmp:
            run(Path(tmp))
    print("OK: serve hot-reload smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
