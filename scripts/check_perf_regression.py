#!/usr/bin/env python
"""CI perf-regression gate over ``BENCH_efficiency.json``.

Compares a freshly emitted efficiency record against the committed baseline
and fails (exit code 1) when any model's training seconds-per-batch slowed
down by more than the threshold (default 20%).  The subgraph-scaling sweep
is additionally checked on its largest graph point when both records carry
one, and the pipeline-overlap section is checked on both its wall-time
numbers (prefetched fit wall, scheduled plan-build ms) and its structural
claim (the prefetch run must still hide the bulk of the data wait).

Usage::

    python scripts/check_perf_regression.py BASELINE.json FRESH.json [--threshold 0.2]

Caveats: absolute timings are hardware-specific, so the gate is only
meaningful when baseline and fresh records come from comparable machines
(CI re-times both sides on the same runner class).  Apply the
``perf-regression-ok`` label to a pull request to skip the gate for changes
with a known, accepted slowdown — see README.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load(path: str) -> dict:
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: could not read '{path}': {error}", file=sys.stderr)
        raise SystemExit(2)


def compare(baseline: dict, fresh: dict, threshold: float) -> int:
    failures = []
    rows = []

    baseline_models = baseline.get("models", {})
    fresh_models = fresh.get("models", {})
    for name, base_report in sorted(baseline_models.items()):
        fresh_report = fresh_models.get(name)
        if fresh_report is None:
            failures.append(f"model '{name}' missing from the fresh record")
            continue
        base_time = base_report.get("train_s_per_batch")
        fresh_time = fresh_report.get("train_s_per_batch")
        if not base_time or not fresh_time or base_time != base_time or fresh_time != fresh_time:
            failures.append(f"model '{name}' has no usable train_s_per_batch timing")
            continue
        change = fresh_time / base_time - 1.0
        rows.append((f"{name} train_s_per_batch", base_time, fresh_time, change))
        if change > threshold:
            failures.append(
                f"{name}: train s/batch regressed {change * 100:+.1f}% "
                f"({base_time:.6f}s -> {fresh_time:.6f}s)"
            )

    base_scaling = (baseline.get("subgraph_scaling") or {}).get("points")
    fresh_scaling = (fresh.get("subgraph_scaling") or {}).get("points")
    if base_scaling and fresh_scaling:
        base_point, fresh_point = base_scaling[-1], fresh_scaling[-1]
        if base_point.get("scale") == fresh_point.get("scale"):
            base_time = base_point["sampled_train_s_per_batch"]
            fresh_time = fresh_point["sampled_train_s_per_batch"]
            change = fresh_time / base_time - 1.0
            rows.append(
                (f"sampled NMCDR @scale={base_point['scale']}", base_time, fresh_time, change)
            )
            if change > threshold:
                failures.append(
                    f"sampled NMCDR (largest scaling point): regressed {change * 100:+.1f}%"
                )

    base_overlap = baseline.get("pipeline_overlap")
    fresh_overlap = fresh.get("pipeline_overlap")
    if fresh_overlap:
        # Structural claim, baseline-independent: prefetching must still hide
        # most of the consumer's data wait.
        serial_wait = fresh_overlap.get("serial_data_wait_s")
        prefetch_wait = fresh_overlap.get("prefetch_data_wait_s")
        if serial_wait and prefetch_wait and prefetch_wait > 0.6 * serial_wait:
            failures.append(
                f"pipeline overlap lost: prefetch data wait {prefetch_wait:.2f}s vs "
                f"serial {serial_wait:.2f}s (expected < 60%)"
            )
    if base_overlap and fresh_overlap:
        for label, field_name in (
            ("prefetched fit wall", "prefetch_fit_wall_s"),
            ("scheduled plan build", ("plan_build", "scheduled_ms")),
        ):
            if isinstance(field_name, tuple):
                base_time = (base_overlap.get(field_name[0]) or {}).get(field_name[1])
                fresh_time = (fresh_overlap.get(field_name[0]) or {}).get(field_name[1])
                if base_time and fresh_time:
                    base_time, fresh_time = base_time / 1e3, fresh_time / 1e3  # ms → s
            else:
                base_time = base_overlap.get(field_name)
                fresh_time = fresh_overlap.get(field_name)
            if not base_time or not fresh_time:
                continue
            change = fresh_time / base_time - 1.0
            rows.append((f"pipeline overlap: {label}", base_time, fresh_time, change))
            if change > threshold:
                failures.append(
                    f"pipeline overlap: {label} regressed {change * 100:+.1f}%"
                )

    base_sharded = baseline.get("sharded_scaling")
    fresh_sharded = fresh.get("sharded_scaling")
    if fresh_sharded:
        # Structural claims, baseline-independent.  The n_shards=1 replica
        # must keep replaying the serial loss stream bit-for-bit, and its
        # IPC/publish overhead must stay within a constant factor of serial.
        if not fresh_sharded.get("replica_matches_serial", True):
            failures.append(
                "sharded executor: n_shards=1 no longer replays the serial loss stream"
            )
        points = fresh_sharded.get("points") or []
        serial_wall = fresh_sharded.get("serial_fit_wall_s")
        replica = next((p for p in points if p.get("n_shards") == 1), None)
        if replica and serial_wall:
            ratio = replica["fit_wall_s"] / serial_wall
            rows.append(
                (
                    "sharded n=1 wall vs serial",
                    serial_wall,
                    replica["fit_wall_s"],
                    ratio - 1.0,
                ),
            )
            if ratio > 3.0:
                failures.append(
                    f"sharded executor: single-shard overhead {ratio:.2f}x serial (limit 3.0x)"
                )
        # Actual speedup is only meaningful with enough cores (the committed
        # record may come from a single-core container, where every sharded
        # wall is necessarily a slowdown and only the overhead bound above
        # applies); multi-core CI runners enforce the scaling claim.
        # Floor 0.9 rather than 1.0: the pool-closure replication bounds the
        # achievable speedup (see ROADMAP), and on a shared 4-vCPU runner
        # the parent contends with the workers — a hard break-even gate
        # would flake under normal runner noise.  0.9 still catches
        # "parallelism lost entirely" (single-core-like walls are ~0.4x).
        cpu_count = fresh_sharded.get("cpu_count") or 1
        if cpu_count >= 4 and points:
            best = max(p.get("speedup_vs_serial", 0.0) for p in points)
            if best < 0.9:
                failures.append(
                    f"sharded executor: best measured speedup {best:.2f}x on a "
                    f"{cpu_count}-core machine (parallel execution lost)"
                )
    if (
        base_sharded
        and fresh_sharded
        and base_sharded.get("cpu_count") == fresh_sharded.get("cpu_count")
    ):
        base_points = {p.get("n_shards"): p for p in base_sharded.get("points") or []}
        for point in fresh_sharded.get("points") or []:
            base_point = base_points.get(point.get("n_shards"))
            if not base_point:
                continue
            base_time, fresh_time = base_point["fit_wall_s"], point["fit_wall_s"]
            change = fresh_time / base_time - 1.0
            rows.append(
                (f"sharded n={point['n_shards']} fit wall", base_time, fresh_time, change)
            )
            if change > threshold:
                failures.append(
                    f"sharded n={point['n_shards']}: fit wall regressed {change * 100:+.1f}%"
                )

    base_pool = baseline.get("sharded_pool_scaling")
    fresh_pool = fresh.get("sharded_pool_scaling")
    if fresh_pool:
        # Structural claims, baseline-independent.  The float64 canary must
        # keep matching the replicated executor at the PR-4 tolerances, and
        # the per-shard subgraph (the quantity encoder cost follows) must
        # stay decoupled from the pool size.
        equivalence = fresh_pool.get("equivalence") or {}
        if not equivalence.get("metrics_bit_identical", True):
            failures.append(
                "pool sharding: validation metrics diverged from the replicated executor"
            )
        loss_err = equivalence.get("loss_max_rel_err")
        if loss_err is not None and loss_err > 1e-11:
            failures.append(
                f"pool sharding: losses beyond ulp tolerance ({loss_err:.2e} rel err)"
            )
        pool_points = fresh_pool.get("points") or []
        if len(pool_points) >= 2:
            smallest, largest = pool_points[0], pool_points[-1]
            replicated_growth = (
                largest["replicated_max_shard_nodes"]
                / smallest["replicated_max_shard_nodes"]
            )
            pooled_growth = (
                largest["pool_sharded_max_shard_nodes"]
                / smallest["pool_sharded_max_shard_nodes"]
            )
            rows.append(
                (
                    "pool sharding: per-shard node growth",
                    replicated_growth,
                    pooled_growth,
                    pooled_growth / replicated_growth - 1.0,
                )
            )
            # Expected slope ratio ≈ 1/n_shards plus micro-batch overlap
            # (measured ≈ 0.6 at n=2); 0.75 catches "decoupling lost".
            if replicated_growth > 1.15 and (pooled_growth - 1.0) > 0.75 * (
                replicated_growth - 1.0
            ):
                failures.append(
                    "pool sharding: per-shard subgraph no longer decoupled from "
                    f"the pool ({pooled_growth:.2f}x growth vs replicated "
                    f"{replicated_growth:.2f}x)"
                )
            # The activation exchange must stay a bounded slice of the step,
            # and — a total-work claim valid on any core count — replacing
            # n_shards pool encodes with one must not cost more than IPC
            # noise at the largest pool.
            pooled_wall = largest.get("pool_sharded_fit_wall_s")
            gather = largest.get("gather_overhead_s")
            if pooled_wall and gather and gather > 0.6 * pooled_wall:
                failures.append(
                    f"pool sharding: exchange overhead {gather:.2f}s dominates the "
                    f"{pooled_wall:.2f}s fit wall (limit 60%)"
                )
            replicated_wall = largest.get("replicated_fit_wall_s")
            if pooled_wall and replicated_wall:
                ratio = pooled_wall / replicated_wall
                rows.append(
                    (
                        "pool-sharded vs replicated wall (largest pool)",
                        replicated_wall,
                        pooled_wall,
                        ratio - 1.0,
                    )
                )
                if ratio > 1.25:
                    failures.append(
                        f"pool sharding slower than replicating the pool: "
                        f"{pooled_wall:.2f}s vs {replicated_wall:.2f}s at the "
                        "largest pool size"
                    )
    if (
        base_pool
        and fresh_pool
        and base_pool.get("cpu_count") == fresh_pool.get("cpu_count")
    ):
        base_points = {p.get("pool_size"): p for p in base_pool.get("points") or []}
        for point in fresh_pool.get("points") or []:
            base_point = base_points.get(point.get("pool_size"))
            if not base_point:
                continue
            base_time = base_point["pool_sharded_fit_wall_s"]
            fresh_time = point["pool_sharded_fit_wall_s"]
            change = fresh_time / base_time - 1.0
            rows.append(
                (
                    f"pool-sharded pool={point['pool_size']} fit wall",
                    base_time,
                    fresh_time,
                    change,
                )
            )
            if change > threshold:
                failures.append(
                    f"pool-sharded pool={point['pool_size']}: fit wall regressed "
                    f"{change * 100:+.1f}%"
                )

    base_xchg = baseline.get("shm_exchange")
    fresh_xchg = fresh.get("shm_exchange")
    if fresh_xchg:
        # Structural claims, baseline-independent and robust to noisy
        # hardware.  Bit-exactness first: the plane is a transport, so any
        # drift from the pickled protocol is a correctness bug.
        equivalence = fresh_xchg.get("equivalence") or {}
        for mode in ("eager", "traced"):
            canary = equivalence.get(mode) or {}
            if not canary.get("losses_bit_identical", True):
                failures.append(
                    f"shm exchange: {mode} float64 losses diverged from the "
                    "pickled transport"
                )
            if not canary.get("metrics_bit_identical", True):
                failures.append(
                    f"shm exchange: {mode} float64 validation metrics diverged "
                    "from the pickled transport"
                )
        for point in fresh_xchg.get("points") or []:
            label = f"pool={point.get('pool_size')} traced={point.get('traced')}"
            shm = point.get("shm") or {}
            if shm.get("data_plane_pipe_bytes", 0):
                failures.append(
                    f"shm exchange ({label}): {shm['data_plane_pipe_bytes']} "
                    "data-plane bytes rode the pipes (steady state must be zero)"
                )
            if shm.get("fallback_data_bytes", 0):
                failures.append(
                    f"shm exchange ({label}): worker replies fell back to "
                    "pickled pipes (reply bound lost)"
                )
            # The exchange rounds must stay a bounded slice of the step —
            # the same train/pool_gather+pool_scatter counters the profiler
            # prints.
            wall = shm.get("fit_wall_s")
            overhead = shm.get("exchange_overhead_s")
            if wall and overhead and overhead > 0.6 * wall:
                failures.append(
                    f"shm exchange ({label}): exchange overhead {overhead:.2f}s "
                    f"dominates the {wall:.2f}s fit wall (limit 60%)"
                )
    if (
        base_xchg
        and fresh_xchg
        and base_xchg.get("cpu_count") == fresh_xchg.get("cpu_count")
    ):
        # Machine-comparable wall claims.  The headline: the plane's
        # gather+scatter overhead at the largest pool must stay strictly
        # below the *committed pickled baseline* — the number the plane
        # exists to beat.
        def sweep_point(record, traced):
            points = [
                p
                for p in record.get("points") or []
                if p.get("traced") is traced
            ]
            return max(points, key=lambda p: p.get("pool_size", 0), default=None)

        base_point = sweep_point(base_xchg, False)
        fresh_point = sweep_point(fresh_xchg, False)
        if (
            base_point
            and fresh_point
            and base_point.get("pool_size") == fresh_point.get("pool_size")
        ):
            base_pickled = (base_point.get("pickled") or {}).get("exchange_overhead_s")
            fresh_shm = (fresh_point.get("shm") or {}).get("exchange_overhead_s")
            if base_pickled and fresh_shm:
                rows.append(
                    (
                        f"shm vs pickled-baseline exchange overhead "
                        f"(pool={fresh_point['pool_size']})",
                        base_pickled,
                        fresh_shm,
                        fresh_shm / base_pickled - 1.0,
                    )
                )
                if fresh_shm >= base_pickled:
                    failures.append(
                        f"shm exchange: gather+scatter overhead {fresh_shm:.3f}s "
                        f"not below the committed pickled baseline "
                        f"{base_pickled:.3f}s at pool {fresh_point['pool_size']}"
                    )
            fresh_shm_wall = (fresh_point.get("shm") or {}).get("fit_wall_s")
            base_shm_wall = (base_point.get("shm") or {}).get("fit_wall_s")
            if base_shm_wall and fresh_shm_wall:
                change = fresh_shm_wall / base_shm_wall - 1.0
                rows.append(
                    (
                        f"shm exchange pool={fresh_point['pool_size']} fit wall",
                        base_shm_wall,
                        fresh_shm_wall,
                        change,
                    )
                )
                if change > threshold:
                    failures.append(
                        f"shm exchange: fit wall regressed {change * 100:+.1f}% "
                        f"at pool {fresh_point['pool_size']}"
                    )

    base_traced = baseline.get("traced_replay")
    fresh_traced = fresh.get("traced_replay")
    if fresh_traced:
        # Structural claims, baseline-independent.  Bit-exactness first:
        # traced replay that drifts from eager is a correctness bug, not a
        # perf trade.
        equivalence = fresh_traced.get("equivalence") or {}
        if not equivalence.get("metrics_bit_identical", True):
            failures.append(
                "traced replay: float64 validation metrics diverged from eager"
            )
        if not equivalence.get("losses_bit_identical", True):
            failures.append("traced replay: float64 epoch losses diverged from eager")
        serial = fresh_traced.get("serial") or {}
        sampled = fresh_traced.get("serial_sampled") or {}
        sharded = fresh_traced.get("sharded") or {}
        for label, section in (("serial", serial), ("sampled", sampled), ("sharded", sharded)):
            if section and not section.get("losses_match", True):
                failures.append(
                    f"traced replay ({label}): loss stream diverged from eager"
                )
        hit_rate = serial.get("hit_rate")
        if hit_rate is not None and hit_rate < 0.95:
            failures.append(
                f"traced replay: cache barely serving after warmup "
                f"(hit rate {hit_rate:.3f}, expected >= 0.95)"
            )
        if serial.get("fallbacks"):
            failures.append(
                f"traced replay: {serial['fallbacks']} guard fallbacks on a "
                "homogeneous serial stream"
            )
        # The wall claims are *paired ratios* — eager and traced interleaved
        # block-wise in one process on one machine — but the traced win is
        # partly a cache-residency effect, so heavy external contention can
        # compress it toward 1.0 even in a paired harness.  Mirror the
        # cpu_count-gated sharded-speedup idiom: enforce the decisive-win
        # bound on the full-graph (stable-shape) config only when the fresh
        # run demonstrates comparable conditions (fresh eager wall within
        # 25% of the baseline's eager wall), and keep an unconditional
        # backstop that traced never slows a homogeneous stream down.  The
        # sampled config rebinds edge-sized slots every step, so it is only
        # held to "must not slow eager down" (guard + rebind overhead
        # bounded, not a speedup claim); the sharded ratio covers just 12
        # multiprocess fit steps and is too noisy for a speedup gate, so it
        # gets a blow-up sanity bound only.
        base_serial_eager = ((base_traced or {}).get("serial") or {}).get(
            "eager_s_per_step"
        )
        fresh_serial_eager = serial.get("eager_s_per_step")
        comparable = bool(
            base_serial_eager
            and fresh_serial_eager
            and fresh_serial_eager <= base_serial_eager * 1.25
        )
        ratio = serial.get("traced_step_ratio")
        if ratio is not None:
            rows.append(
                (
                    "traced/eager step ratio (serial full)",
                    serial.get("eager_s_per_step", 0.0),
                    serial.get("traced_s_per_step", 0.0),
                    ratio - 1.0,
                )
            )
            if comparable and ratio > 0.9:
                failures.append(
                    f"traced replay: serial full-graph step ratio {ratio:.3f} "
                    "(traced must stay <= 0.9x eager on comparable machines)"
                )
            if ratio > 1.05:
                failures.append(
                    f"traced replay: serial full-graph step ratio {ratio:.3f} "
                    "(replay must never slow a stable-shape stream down)"
                )
        sharded_ratio = sharded.get("traced_step_ratio")
        if sharded_ratio is not None:
            rows.append(
                (
                    "traced/eager step ratio (sharded n=2)",
                    sharded.get("eager_step_wall_s", 0.0),
                    sharded.get("traced_step_wall_s", 0.0),
                    sharded_ratio - 1.0,
                )
            )
            if sharded_ratio > 1.25:
                failures.append(
                    f"traced replay: sharded n=2 step ratio {sharded_ratio:.3f} "
                    "(traced must not blow up sharded fit wall)"
                )
        sampled_ratio = sampled.get("traced_step_ratio")
        if sampled_ratio is not None:
            rows.append(
                (
                    "traced/eager step ratio (serial sampled)",
                    sampled.get("eager_s_per_step", 0.0),
                    sampled.get("traced_s_per_step", 0.0),
                    sampled_ratio - 1.0,
                )
            )
            if sampled_ratio > 1.10:
                failures.append(
                    f"traced replay: sampled step ratio {sampled_ratio:.3f} "
                    "(shape-polymorphic replay overhead must stay within 10% of eager)"
                )
    if base_traced and fresh_traced:
        base_serial = (base_traced.get("serial") or {}).get("traced_s_per_step")
        fresh_serial = (fresh_traced.get("serial") or {}).get("traced_s_per_step")
        if base_serial and fresh_serial:
            change = fresh_serial / base_serial - 1.0
            rows.append(
                ("traced serial step wall", base_serial, fresh_serial, change)
            )
            if change > threshold:
                failures.append(
                    f"traced replay: serial traced step wall regressed {change * 100:+.1f}%"
                )

    base_serving = baseline.get("serving")
    fresh_serving = fresh.get("serving")
    if fresh_serving:
        # Structural claims, baseline-independent.  Exactness first: a store
        # that answers differently from full-model rescoring is a
        # correctness bug, whatever its latency.
        if not fresh_serving.get("exactness_canary", True):
            failures.append(
                "serving: store-backed top-K diverged from full-model rescoring"
            )
        if not fresh_serving.get("cold_requests_routed", 1):
            failures.append(
                "serving: no canary request exercised the cold-start "
                "matching-module route"
            )
        if not fresh_serving.get("refresh_bit_identical", True):
            failures.append(
                "serving: incremental store refresh diverged from a full rebuild"
            )
        # Paired in-process walls: the one-domain incremental refresh exists
        # to be cheaper than rebuilding both domains from scratch.
        refresh_s = fresh_serving.get("incremental_refresh_s")
        rebuild_s = fresh_serving.get("rebuild_s")
        if refresh_s and rebuild_s and refresh_s >= rebuild_s:
            failures.append(
                f"serving: incremental refresh {refresh_s * 1e3:.1f}ms not "
                f"below the paired full rebuild {rebuild_s * 1e3:.1f}ms"
            )
        # Resilience canaries: every overload/deadline outcome in the bench
        # drill must be a typed response, and the injected-staleness walk
        # must descend the ladder rung by rung.
        if not fresh_serving.get("resilience_typed_ok", True):
            failures.append(
                "serving: overload/deadline drill produced an untyped outcome"
            )
        if not fresh_serving.get("ladder_ok", True):
            failures.append(
                "serving: degradation ladder walked the wrong rungs "
                f"({fresh_serving.get('ladder_rungs')})"
            )
    if (
        base_serving
        and fresh_serving
        and base_serving.get("cpu_count") == fresh_serving.get("cpu_count")
    ):
        # Machine-comparable wall claims: batched throughput and tail
        # latency of the serving front end must not regress.
        base_thr = base_serving.get("throughput_req_s")
        fresh_thr = fresh_serving.get("throughput_req_s")
        if base_thr and fresh_thr:
            # Expressed as per-request wall so the shared +threshold
            # "bigger is worse" convention applies.
            change = base_thr / fresh_thr - 1.0
            rows.append(
                ("serving batched s/request", 1.0 / base_thr, 1.0 / fresh_thr, change)
            )
            if change > threshold:
                failures.append(
                    f"serving: batched throughput regressed {change * 100:+.1f}% "
                    f"({base_thr:.0f} -> {fresh_thr:.0f} req/s)"
                )
        base_p95 = base_serving.get("latency_p95_ms")
        fresh_p95 = fresh_serving.get("latency_p95_ms")
        if base_p95 and fresh_p95:
            change = fresh_p95 / base_p95 - 1.0
            rows.append(
                ("serving p95 latency", base_p95 / 1e3, fresh_p95 / 1e3, change)
            )
            if change > threshold:
                failures.append(
                    f"serving: p95 request latency regressed {change * 100:+.1f}% "
                    f"({base_p95:.2f} -> {fresh_p95:.2f} ms)"
                )
        base_shed = base_serving.get("shed_req_s")
        fresh_shed = fresh_serving.get("shed_req_s")
        if base_shed and fresh_shed:
            # Shedding must stay cheap: a rejection that costs as much as an
            # answer defeats the point of admission control.
            change = base_shed / fresh_shed - 1.0
            rows.append(
                ("serving shed s/rejection", 1.0 / base_shed, 1.0 / fresh_shed, change)
            )
            if change > threshold:
                failures.append(
                    f"serving: load-shedding throughput regressed {change * 100:+.1f}% "
                    f"({base_shed:.0f} -> {fresh_shed:.0f} rejections/s)"
                )

    print(f"perf gate (threshold: +{threshold * 100:.0f}% train s/batch)")
    for label, base_time, fresh_time, change in rows:
        print(f"  {label:<40} {base_time:.6f}s -> {fresh_time:.6f}s ({change * 100:+.1f}%)")
    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        print(
            "\nIf the slowdown is intended and accepted, apply the "
            "'perf-regression-ok' label to the pull request (see README)."
        )
        return 1
    print("OK: no train-time regression beyond the threshold.")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_efficiency.json")
    parser.add_argument("fresh", help="freshly emitted BENCH_efficiency.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="allowed fractional slowdown per model (default: 0.2 = 20%%)",
    )
    args = parser.parse_args()
    return compare(load(args.baseline), load(args.fresh), args.threshold)


if __name__ == "__main__":
    raise SystemExit(main())
